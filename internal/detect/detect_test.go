package detect

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/raceflag"
	"hetsyslog/internal/syslog"
	"hetsyslog/internal/taxonomy"
)

// testClock is a hand-cranked clock for driving the detector windows
// deterministically.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}
func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func rec(host, app, content string) collector.Record {
	return collector.Record{
		Tag: "syslog." + host,
		Msg: &syslog.Message{
			Facility: syslog.AuthPriv, Severity: syslog.Warning,
			Hostname: host, AppName: app, Content: content,
		},
	}
}

// collectEmits returns an emit func plus the slice it appends to.
func collectEmits() (func(collector.Record), *[]collector.Record) {
	var out []collector.Record
	return func(r collector.Record) { out = append(out, r) }, &out
}

// TestDetectRateSpike warms a per-source baseline over a full window of
// quiet buckets, then floods the current bucket: exactly one rate alert
// must fire, and the rest of the flood must be suppressed by the
// per-source cooldown.
func TestDetectRateSpike(t *testing.T) {
	clock := newTestClock()
	d, err := New(Config{
		Window: time.Minute, Buckets: 6, ZScore: 3, MinCount: 10,
		DisableSensitive: true, Now: clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	emit, got := collectEmits()
	r := rec("cn101", "kernel", "CPU 3 temperature above threshold")

	// Baseline: 2 records per 10s bucket for 10 buckets — enough completed
	// buckets to warm the decayed mean/variance.
	for b := 0; b < 10; b++ {
		for i := 0; i < 2; i++ {
			d.Process(r, emit)
		}
		clock.advance(10 * time.Second)
	}
	if len(*got) != 0 {
		t.Fatalf("baseline traffic fired %d alerts", len(*got))
	}

	// Spike: 30 records in one bucket, an order of magnitude over baseline.
	for i := 0; i < 30; i++ {
		d.Process(r, emit)
	}
	if len(*got) != 1 {
		t.Fatalf("spike fired %d alerts, want exactly 1", len(*got))
	}
	a := (*got)[0]
	if a.Tag != "detect.rate" || a.Meta["detector"] != "rate" {
		t.Errorf("alert record mislabeled: tag=%q meta=%v", a.Tag, a.Meta)
	}
	if a.Msg == nil || a.Msg.Hostname != "cn101" || a.Msg.AppName != "detect" {
		t.Errorf("alert message misattributed: %+v", a.Msg)
	}
	// "kernel" is an app name, not a valid taxonomy category, so the
	// synthetic record falls back to the Intrusion Detection label.
	if a.Meta["category"] != string(taxonomy.IntrusionDetection) {
		t.Errorf("category = %q, want fallback %q", a.Meta["category"], taxonomy.IntrusionDetection)
	}
	if c, err := strconv.ParseFloat(a.Meta["confidence"], 64); err != nil || c <= 0 || c >= 1 {
		t.Errorf("confidence = %q, want (0, 1)", a.Meta["confidence"])
	}
	if v := d.suppressed[kindRate].Value(); v == 0 {
		t.Error("flood past the first alert should count as suppressed")
	}
	if v := d.fired[kindRate].Value(); v != 1 {
		t.Errorf("fired counter = %d, want 1", v)
	}
}

// TestDetectRateNeedsWarmup locks down the cold-start rule: a brand-new
// source can dump any volume without a rate alert until a full window of
// completed buckets has been folded into its baseline.
func TestDetectRateNeedsWarmup(t *testing.T) {
	clock := newTestClock()
	d, err := New(Config{DisableSensitive: true, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit, got := collectEmits()
	r := rec("cold-host", "sshd", "some very loud message")
	for i := 0; i < 500; i++ {
		d.Process(r, emit)
	}
	if len(*got) != 0 {
		t.Fatalf("cold source fired %d rate alerts before warmup", len(*got))
	}
}

// TestDetectRateClassifyKeying verifies the category dimension: with a
// Classify hook, two message kinds from one host get independent
// baselines, and the spiking category is named in the alert (and used as
// the synthetic record's pre-label when valid).
func TestDetectRateClassifyKeying(t *testing.T) {
	clock := newTestClock()
	classify := func(text string) taxonomy.Category {
		if text == "hot" {
			return taxonomy.ThermalIssue
		}
		return taxonomy.Unimportant
	}
	d, err := New(Config{
		Window: time.Minute, Buckets: 6, MinCount: 10,
		DisableSensitive: true, Classify: classify, Now: clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	emit, got := collectEmits()
	hot, noise := rec("cn7", "kernel", "hot"), rec("cn7", "logger", "chatter")
	for b := 0; b < 10; b++ {
		for i := 0; i < 2; i++ {
			d.Process(hot, emit)
			d.Process(noise, emit)
		}
		clock.advance(10 * time.Second)
	}
	// Only the thermal stream spikes; the other stays at baseline.
	for i := 0; i < 30; i++ {
		d.Process(hot, emit)
	}
	if len(*got) != 1 {
		t.Fatalf("got %d alerts, want 1", len(*got))
	}
	if cat := (*got)[0].Meta["category"]; cat != string(taxonomy.ThermalIssue) {
		t.Errorf("alert pre-label = %q, want %q (the spiking category)", cat, taxonomy.ThermalIssue)
	}
	if d.Sources() != 2 {
		t.Errorf("Sources() = %d, want 2 (one per category)", d.Sources())
	}
}

// TestDetectBurst drives the failed-password machine: fires exactly once
// at the threshold, suppresses within the cooldown, and re-arms after the
// window resets the counter.
func TestDetectBurst(t *testing.T) {
	clock := newTestClock()
	d, err := New(Config{Window: time.Minute, DisableRate: true, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit, got := collectEmits()
	fail := rec("cn101", "sshd", "Failed password for root from 203.0.113.9 port 40123 ssh2")
	for i := 0; i < 10; i++ {
		d.Process(fail, emit)
	}
	if len(*got) != 1 || (*got)[0].Meta["detector"] != "burst" {
		t.Fatalf("10 failures fired %d alerts (%v), want 1 burst", len(*got), *got)
	}
	if v := d.suppressed[kindBurst].Value(); v != 4 {
		t.Errorf("suppressed = %d, want 4 (failures 7..10)", v)
	}

	// Past the window the count resets: 5 more failures stay under the
	// default threshold of 6.
	clock.advance(2 * time.Minute)
	for i := 0; i < 5; i++ {
		d.Process(fail, emit)
	}
	if len(*got) != 1 {
		t.Fatalf("sub-threshold failures in a fresh window fired (total %d)", len(*got))
	}
	// The 6th in the fresh window fires again — the cooldown has lapsed.
	d.Process(fail, emit)
	if len(*got) != 2 {
		t.Fatalf("threshold in a fresh window after cooldown should re-fire (total %d)", len(*got))
	}
}

// TestDetectSpray drives the username-spray machine: distinct usernames
// fire it at the threshold, and because spray attempts are auth failures
// too, the burst machine fires alongside at its own threshold.
func TestDetectSpray(t *testing.T) {
	clock := newTestClock()
	d, err := New(Config{Window: time.Minute, DisableRate: true, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit, got := collectEmits()
	for i := 0; i < 5; i++ {
		d.Process(rec("cn101", "sshd", fmt.Sprintf(
			"Failed password for invalid user svc%03d from 203.0.113.9 port 40123 ssh2", i)), emit)
	}
	if len(*got) != 1 || (*got)[0].Meta["detector"] != "spray" {
		t.Fatalf("5 distinct users fired %v, want exactly one spray", *got)
	}
	// One more failure crosses the burst threshold (6) too.
	d.Process(rec("cn101", "sshd",
		"Failed password for invalid user svc005 from 203.0.113.9 port 40123 ssh2"), emit)
	kinds := map[string]int{}
	for _, a := range *got {
		kinds[a.Meta["detector"]]++
	}
	if kinds["spray"] != 1 || kinds["burst"] != 1 {
		t.Fatalf("kinds = %v, want one spray and one burst", kinds)
	}
	// Repeating the same username adds nothing: no duplicate spray.
	for i := 0; i < 10; i++ {
		d.Process(rec("cn101", "sshd",
			"Failed password for invalid user svc000 from 203.0.113.9 port 40123 ssh2"), emit)
	}
	if kinds := d.fired[kindSpray].Value(); kinds != 1 {
		t.Errorf("spray fired %d times, want 1", kinds)
	}
}

// TestDetectScan drives the scan machine with strictly ascending client
// ports: fires exactly once at the distinct-port threshold and records
// the ascending streak.
func TestDetectScan(t *testing.T) {
	clock := newTestClock()
	d, err := New(Config{Window: time.Minute, DisableRate: true, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit, got := collectEmits()
	for i := 0; i < 20; i++ {
		d.Process(rec("cn101", "sshd", fmt.Sprintf(
			"Connection closed by 203.0.113.9 port %d [preauth]", 1024+i*7)), emit)
	}
	if len(*got) != 1 || (*got)[0].Meta["detector"] != "scan" {
		t.Fatalf("ascending probe fired %v, want exactly one scan", *got)
	}
	if v := d.fired[kindScan].Value(); v != 1 {
		t.Errorf("scan fired %d, want 1", v)
	}
	if v := d.suppressed[kindScan].Value(); v == 0 {
		t.Error("probes past the first alert should count as suppressed")
	}
	// Repeated probes of one port are not a widening scan.
	d2, _ := New(Config{Window: time.Minute, DisableRate: true, Now: clock.now})
	emit2, got2 := collectEmits()
	for i := 0; i < 50; i++ {
		d2.Process(rec("cn101", "sshd", "Connection closed by 203.0.113.9 port 55000 [preauth]"), emit2)
	}
	if len(*got2) != 0 {
		t.Fatalf("single-port probing fired %d scans", len(*got2))
	}
}

// TestDetectAuthFailureMatcher tables the auth-failure phrasings the
// matcher must cover — the loggen template forms plus classic OpenSSH —
// and the username each carries.
func TestDetectAuthFailureMatcher(t *testing.T) {
	cases := []struct {
		content string
		ok      bool
		user    string
	}{
		{"Failed password for root from 10.0.0.1 port 22 ssh2", true, "root"},
		{"Failed password for invalid user admin from 10.0.0.1 port 22 ssh2", true, "admin"},
		{"Invalid user guest from 10.0.0.1 port 48210", true, "guest"},
		{"FAILED su for root by attacker", true, "attacker"},
		{"alice : user NOT in sudoers ; TTY=pts/0 ; PWD=/home/alice", true, "alice"},
		{"pam_unix(sshd:auth): authentication failure; logname= uid=0 euid=0 rhost=10.0.0.1 user=bob", true, "bob"},
		{"ANOM_LOGIN_FAILURES pid=812 uid=0", true, ""},
		{"Accepted password for root from 10.0.0.1 port 22 ssh2", false, ""},
		{"CPU 3 temperature above threshold", false, ""},
		{"session opened for user root", false, ""},
	}
	for _, c := range cases {
		user, ok := authFailure(c.content)
		if ok != c.ok || user != c.user {
			t.Errorf("authFailure(%q) = (%q, %v), want (%q, %v)", c.content, user, ok, c.user, c.ok)
		}
	}
}

// TestDetectPreauthConnMatcher tables the pre-auth connection phrasings
// and their port extraction; lines without a parseable port are not scan
// evidence.
func TestDetectPreauthConnMatcher(t *testing.T) {
	cases := []struct {
		content string
		ok      bool
		port    int
	}{
		{"Connection closed by 10.0.0.1 port 48210 [preauth]", true, 48210},
		{"Timeout before authentication for 10.0.0.1 port 9 [preauth]", true, 9},
		{"Disconnected from 10.0.0.1 port 1024 [preauth]", true, 1024},
		{"Connection closed by 10.0.0.1 [preauth]", false, 0},
		{"Connection closed by 10.0.0.1 port x [preauth]", false, 0},
		{"Connection closed by 10.0.0.1 port 48210", false, 0},
		{"session opened for user root", false, 0},
	}
	for _, c := range cases {
		port, ok := preauthConn(c.content)
		if ok != c.ok || port != c.port {
			t.Errorf("preauthConn(%q) = (%d, %v), want (%d, %v)", c.content, port, ok, c.port, c.ok)
		}
	}
}

// TestDetectSmallSet exercises the fixed-capacity distinct counter:
// duplicates rejected, saturation at capacity instead of growth.
func TestDetectSmallSet(t *testing.T) {
	var s smallSet
	if !s.add(42) || s.add(42) {
		t.Fatal("add must report new values once")
	}
	if !s.add(0) {
		t.Fatal("zero must be representable")
	}
	for i := uint64(1); i < 200; i++ {
		s.add(i * 7919)
	}
	if int(s.n) > len(s.slots) {
		t.Fatalf("set grew past capacity: n=%d cap=%d", s.n, len(s.slots))
	}
	if int(s.n) != len(s.slots) {
		t.Fatalf("200 distinct values should saturate the set: n=%d", s.n)
	}
	s.reset()
	if s.n != 0 || !s.add(42) {
		t.Fatal("reset must empty the set")
	}
}

// TestDetectBoundedMemory is the capacity contract: 120k distinct sources
// through a table capped at 1024 must leave at most the cap tracked, with
// the overflow evicted (idlest-of-sample) rather than grown.
func TestDetectBoundedMemory(t *testing.T) {
	clock := newTestClock()
	const maxSources = 1024
	d, err := New(Config{MaxSources: maxSources, Shards: 8, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit, _ := collectEmits()
	for i := 0; i < 120_000; i++ {
		r := rec("host-"+strconv.Itoa(i), "kernel", "benign chatter")
		d.Process(r, emit)
		if i%1000 == 0 {
			clock.advance(time.Millisecond)
		}
	}
	if n := d.Sources(); n > maxSources {
		t.Fatalf("Sources() = %d, exceeds MaxSources %d", n, maxSources)
	}
	if v := d.evicted.Value(); v < 120_000-maxSources {
		t.Errorf("evicted = %d, want >= %d (every overflow insert evicts)", v, 120_000-maxSources)
	}
}

// TestDetectSweepEvictsIdle checks the pipeline-driven sweep: sources
// unseen for IdleTTL leave both tables; recently seen ones stay.
func TestDetectSweepEvictsIdle(t *testing.T) {
	clock := newTestClock()
	d, err := New(Config{Window: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit, _ := collectEmits()
	// Both records share the app name, so old-host holds exactly one rate
	// entry (host, app) plus one sensitive entry (host).
	d.Process(rec("old-host", "kernel", "chatter"), emit)
	d.Process(rec("old-host", "kernel", "Failed password for root from 10.0.0.1 port 22 ssh2"), emit)
	clock.advance(11 * time.Minute) // past IdleTTL = 10 * Window
	d.Process(rec("fresh-host", "kernel", "chatter"), emit)

	before := d.Sources()
	evicted := d.Sweep(clock.now())
	if evicted != 2 {
		t.Fatalf("Sweep evicted %d, want 2 (rate + sensitive entries of old-host)", evicted)
	}
	if after := d.Sources(); after != before-2 || after != 1 {
		t.Fatalf("Sources() after sweep = %d, want 1 (fresh-host)", after)
	}
	if d.evicted.Value() < 2 {
		t.Errorf("evicted counter = %d, want >= 2", d.evicted.Value())
	}
}

// TestDetectStateAndTopSources covers the /detect/state document: one
// counts row per active detector, and the noisiest-source list ordered by
// current-window volume.
func TestDetectStateAndTopSources(t *testing.T) {
	clock := newTestClock()
	d, err := New(Config{Window: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit, _ := collectEmits()
	for i := 0; i < 9; i++ {
		d.Process(rec("loud", "kernel", "chatter"), emit)
	}
	for i := 0; i < 3; i++ {
		d.Process(rec("quiet", "kernel", "chatter"), emit)
	}
	st := d.State(10)
	if st.Evaluated != 12 || st.Sources != 2 {
		t.Fatalf("State = %+v, want Evaluated 12, Sources 2", st)
	}
	if len(st.Detectors) != numKinds {
		t.Fatalf("got %d detector rows, want %d", len(st.Detectors), numKinds)
	}
	if len(st.TopSources) != 2 || st.TopSources[0].Host != "loud" || st.TopSources[0].WindowCount != 9 {
		t.Fatalf("TopSources = %+v, want loud(9) first", st.TopSources)
	}
	if got := d.TopSources(1); len(got) != 1 || got[0].Host != "loud" {
		t.Fatalf("TopSources(1) = %+v, want just loud", got)
	}
	// Disabled families contribute no rows.
	d2, _ := New(Config{DisableSensitive: true, Now: clock.now})
	if rows := d2.State(0).Detectors; len(rows) != 1 || rows[0].Detector != "rate" {
		t.Fatalf("rate-only detector rows = %+v", rows)
	}
}

// TestDetectServeState exercises the HTTP surface: JSON round-trip and
// the 400 validation on ?top, matching the dashboard views' contract.
func TestDetectServeState(t *testing.T) {
	d, err := New(Config{Now: newTestClock().now})
	if err != nil {
		t.Fatal(err)
	}
	emit, _ := collectEmits()
	d.Process(rec("cn1", "kernel", "chatter"), emit)

	w := httptest.NewRecorder()
	d.ServeState(w, httptest.NewRequest("GET", "/detect/state?top=5", nil))
	if w.Code != 200 {
		t.Fatalf("status %d, body %s", w.Code, w.Body)
	}
	var st State
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if st.Evaluated != 1 || st.Sources != 1 {
		t.Errorf("decoded state = %+v", st)
	}

	for _, bad := range []string{"?top=abc", "?top=-1", "?top=1.5"} {
		w := httptest.NewRecorder()
		d.ServeState(w, httptest.NewRequest("GET", "/detect/state"+bad, nil))
		if w.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, w.Code)
		}
	}
}

// TestDetectAlertManagerAttribution checks the monitor side of delivery:
// fired alerts reach the AlertManager with detector name and confidence,
// and land in the recent ring behind GET /alerts.
func TestDetectAlertManagerAttribution(t *testing.T) {
	clock := newTestClock()
	am := &monitor.AlertManager{}
	d, err := New(Config{Window: time.Minute, DisableRate: true, Alerts: am, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit, _ := collectEmits()
	for i := 0; i < 6; i++ {
		d.Process(rec("cn101", "sshd", "Failed password for root from 203.0.113.9 port 40123 ssh2"), emit)
	}
	recent := am.Recent(0, time.Time{})
	if len(recent) != 1 {
		t.Fatalf("alert ring has %d entries, want 1", len(recent))
	}
	a := recent[0]
	if a.Detector != "burst" || a.Confidence <= 0 || a.Confidence >= 1 {
		t.Errorf("alert attribution = detector %q confidence %v", a.Detector, a.Confidence)
	}
	if a.Category != taxonomy.IntrusionDetection || a.Node != "cn101" {
		t.Errorf("alert = %+v", a)
	}
}

// TestDetectDisabledFamilies: both off is a config error; one off leaves
// the other working.
func TestDetectDisabledFamilies(t *testing.T) {
	if _, err := New(Config{DisableRate: true, DisableSensitive: true}); err == nil {
		t.Fatal("both families disabled must be rejected")
	}
	d, err := New(Config{DisableSensitive: true, Now: newTestClock().now})
	if err != nil {
		t.Fatal(err)
	}
	emit, got := collectEmits()
	for i := 0; i < 20; i++ {
		d.Process(rec("cn1", "sshd", "Failed password for root from 10.0.0.1 port 22 ssh2"), emit)
	}
	if len(*got) != 0 {
		t.Fatalf("sensitive-disabled detector fired %d alerts", len(*got))
	}
}

// TestDetectSteadyStateAllocs is the hot-path contract from the issue:
// once a source is tracked and past its one-time alerts, evaluating a
// record — benign, auth-failure, and pre-auth alike — allocates nothing.
func TestDetectSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	clock := newTestClock()
	d, err := New(Config{Window: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	emit := func(collector.Record) {}
	recs := []collector.Record{
		rec("cn101", "kernel", "CPU 3 temperature above threshold"),
		rec("cn101", "sshd", "Failed password for root from 203.0.113.9 port 40123 ssh2"),
		rec("cn101", "sshd", "Connection closed by 203.0.113.9 port 55000 [preauth]"),
	}
	// Warm up: source insertion and the burst detector's single fire are
	// the allocating events; with a pinned clock the cooldown then holds.
	for i := 0; i < 50; i++ {
		for _, r := range recs {
			d.Process(r, emit)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, r := range recs {
			d.Process(r, emit)
		}
	}); n != 0 {
		t.Errorf("steady-state Process allocates %.1f times per 3 records, want 0", n)
	}
}

// BenchmarkDetectThroughput pushes a mixed stream — mostly benign
// chatter, a slice of auth failures and pre-auth probes — through the
// full detector at steady state across 64 sources.
func BenchmarkDetectThroughput(b *testing.B) {
	clock := newTestClock()
	d, err := New(Config{Window: time.Minute, Now: clock.now})
	if err != nil {
		b.Fatal(err)
	}
	emit := func(collector.Record) {}
	const hosts = 64
	recs := make([]collector.Record, 0, hosts*4)
	for h := 0; h < hosts; h++ {
		host := fmt.Sprintf("cn%03d", h)
		recs = append(recs,
			rec(host, "kernel", "CPU 3 temperature above threshold"),
			rec(host, "slurmd", "launch task 1234 for job step"),
			rec(host, "sshd", "Failed password for root from 203.0.113.9 port 40123 ssh2"),
			rec(host, "sshd", "Connection closed by 203.0.113.9 port 55000 [preauth]"),
		)
	}
	for _, r := range recs {
		d.Process(r, emit)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		d.Process(r, emit)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}
