package detect

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// DetectorCounts is one detector's fired/suppressed tally in a State.
type DetectorCounts struct {
	Detector   string `json:"detector"`
	Fired      int64  `json:"fired"`
	Suppressed int64  `json:"suppressed"`
}

// SourceActivity describes one tracked rate source for the noisiest-N
// view: its current-window volume against its learned baseline.
type SourceActivity struct {
	Host        string  `json:"host"`
	Category    string  `json:"category"`
	WindowCount int     `json:"window_count"`
	Baseline    float64 `json:"baseline_per_bucket"`
	ZScore      float64 `json:"zscore"`
}

// State is the /detect/state document.
type State struct {
	Evaluated  int64            `json:"evaluated"`
	Sources    int              `json:"sources"`
	Evicted    int64            `json:"evicted"`
	Detectors  []DetectorCounts `json:"detectors"`
	TopSources []SourceActivity `json:"top_sources"`
}

// State snapshots the detector: per-detector counters plus the topN
// noisiest rate sources by current-window volume.
func (d *Detector) State(topN int) State {
	st := State{
		Evaluated:  d.evaluated.Value(),
		Sources:    d.Sources(),
		Evicted:    d.evicted.Value(),
		Detectors:  make([]DetectorCounts, 0, numKinds),
		TopSources: d.TopSources(topN),
	}
	for k := 0; k < numKinds; k++ {
		if k == kindRate && d.rate == nil {
			continue
		}
		if k != kindRate && d.sens == nil {
			continue
		}
		st.Detectors = append(st.Detectors, DetectorCounts{
			Detector:   kindNames[k],
			Fired:      d.fired[k].Value(),
			Suppressed: d.suppressed[k].Value(),
		})
	}
	return st
}

// TopSources returns the n noisiest tracked rate sources by
// current-window volume (the ring sum), busiest first. Diagnostics path
// — it walks every shard and allocates freely.
func (d *Detector) TopSources(n int) []SourceActivity {
	out := []SourceActivity{}
	if d.rate == nil || n <= 0 {
		return out
	}
	for i := range d.rate.shards {
		sh := &d.rate.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sources {
			total := 0
			for _, c := range s.counts {
				total += int(c)
			}
			out = append(out, SourceActivity{
				Host:        s.host,
				Category:    s.category,
				WindowCount: total,
				Baseline:    s.mean,
				ZScore:      (float64(s.counts[s.cur]) - s.mean) / math.Sqrt(s.vari+1),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].WindowCount > out[b].WindowCount })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ServeState handles GET /detect/state: the State document as JSON.
// Parameter top caps the noisiest-source list (default 10, must be a
// non-negative integer; 0 omits the list). Malformed values are rejected
// with 400, matching the dashboard views' validation.
func (d *Detector) ServeState(w http.ResponseWriter, r *http.Request) {
	top := 10
	if s := r.URL.Query().Get("top"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad top: must be a non-negative integer", http.StatusBadRequest)
			return
		}
		top = n
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(d.State(top)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
