package detect

import (
	"strings"
	"sync"
)

// sensTable tracks one sensSource per host, sharded like the rate table.
type sensTable struct {
	shards      []sensShard
	mask        uint64
	maxPerShard int
}

type sensShard struct {
	mu      sync.Mutex
	sources map[uint64]*sensSource
}

// sensSource holds the three windowed state machines for one host:
// failed-password burst (a plain count), username spray (distinct
// usernames behind a fixed-capacity hash set), and scan (distinct client
// ports, plus an ascending-streak counter that marks sequential probing).
// Every field is fixed-size, so a host's state never grows.
type sensSource struct {
	host     string // cloned
	lastSeen int64

	failStart int64
	failCount int
	failFire  int64

	sprayStart int64
	users      smallSet
	sprayFire  int64

	scanStart int64
	ports     smallSet
	lastPort  int
	ascending int
	scanFire  int64
}

func newSensTable(shards, maxPerShard int) *sensTable {
	t := &sensTable{
		shards:      make([]sensShard, shards),
		mask:        uint64(shards - 1),
		maxPerShard: maxPerShard,
	}
	for i := range t.shards {
		t.shards[i].sources = make(map[uint64]*sensSource)
	}
	return t
}

// observe matches one record against the sensitive patterns and advances
// the host's state machines. Non-matching records return before taking
// any lock — the common case costs two substring probes.
func (t *sensTable) observe(d *Detector, host, content string, now int64, fired *firedList) {
	user, isFail := authFailure(content)
	port, isConn := preauthConn(content)
	if !isFail && !isConn {
		return
	}
	key := hashKey(host, "")
	sh := &t.shards[key&t.mask]
	sh.mu.Lock()
	s := sh.sources[key]
	if s == nil {
		if len(sh.sources) >= t.maxPerShard {
			sh.evictIdlest(d)
		}
		s = &sensSource{host: strings.Clone(host)}
		sh.sources[key] = s
	}
	s.lastSeen = now

	if isFail {
		if now-s.failStart >= d.window {
			s.failStart, s.failCount = now, 0
		}
		s.failCount++
		if s.failCount >= d.cfg.BurstThreshold {
			if now-s.failFire >= d.window {
				s.failFire = now
				fired.add(firedAlert{
					kind:  kindBurst,
					host:  s.host,
					count: s.failCount,
					conf:  confidence(s.failCount, d.cfg.BurstThreshold),
				})
			} else {
				d.suppressed[kindBurst].Inc()
			}
		}
		if user != "" {
			if now-s.sprayStart >= d.window {
				s.sprayStart = now
				s.users.reset()
			}
			s.users.add(hashString(fnvOffset64, user))
			if int(s.users.n) >= d.cfg.SprayThreshold {
				if now-s.sprayFire >= d.window {
					s.sprayFire = now
					fired.add(firedAlert{
						kind:  kindSpray,
						host:  s.host,
						users: int(s.users.n),
						conf:  confidence(int(s.users.n), d.cfg.SprayThreshold),
					})
				} else {
					d.suppressed[kindSpray].Inc()
				}
			}
		}
	}

	if isConn && port > 0 {
		if now-s.scanStart >= d.window {
			s.scanStart = now
			s.ports.reset()
			s.lastPort, s.ascending = 0, 0
		}
		if s.ports.add(uint64(port)) {
			if s.lastPort != 0 && port > s.lastPort {
				s.ascending++
			}
			s.lastPort = port
		}
		if int(s.ports.n) >= d.cfg.ScanThreshold {
			if now-s.scanFire >= d.window {
				s.scanFire = now
				fired.add(firedAlert{
					kind:      kindScan,
					host:      s.host,
					count:     int(s.ports.n),
					ascending: s.ascending,
					conf:      confidence(int(s.ports.n), d.cfg.ScanThreshold),
				})
			} else {
				d.suppressed[kindScan].Inc()
			}
		}
	}
	sh.mu.Unlock()
}

// confidence maps "count over threshold" into (0, 1): 0.5 right at the
// threshold, asymptotically 1 as the count dwarfs it.
func confidence(count, threshold int) float64 {
	return float64(count) / float64(count+threshold)
}

func (sh *sensShard) evictIdlest(d *Detector) {
	var victim uint64
	oldest := int64(1<<63 - 1)
	n := 0
	for k, s := range sh.sources {
		if s.lastSeen < oldest {
			oldest, victim = s.lastSeen, k
		}
		n++
		if n >= evictScan {
			break
		}
	}
	delete(sh.sources, victim)
	d.evicted.Inc()
}

func (t *sensTable) sweep(cutoff int64) int {
	evicted := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, s := range sh.sources {
			if s.lastSeen < cutoff {
				delete(sh.sources, k)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

func (t *sensTable) len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.sources)
		sh.mu.Unlock()
	}
	return n
}

// smallSet is a fixed-capacity open-addressing set of 64-bit values —
// the bounded distinct-counter behind spray and scan. It saturates at
// capacity (counts beyond it read as "many"), which is exactly what
// keeps a single host's state O(1) no matter how wide the attack.
type smallSet struct {
	n     uint8
	slots [64]uint64
}

// add inserts v, reporting whether it was new. Zero values are mapped to
// one so an empty slot is unambiguous.
func (s *smallSet) add(v uint64) bool {
	if v == 0 {
		v = 1
	}
	i := v & uint64(len(s.slots)-1)
	for probes := 0; probes < len(s.slots); probes++ {
		switch s.slots[i] {
		case v:
			return false
		case 0:
			s.slots[i] = v
			s.n++
			return true
		}
		i = (i + 1) & uint64(len(s.slots)-1)
	}
	return false // saturated
}

func (s *smallSet) reset() { *s = smallSet{} }

// authFailure reports whether content describes an authentication
// failure, extracting the attempted username when the phrasing carries
// one. Matching is substring-based over the raw content — no regexp, no
// allocation — and covers the sshd/su/sudo/pam phrasings the loggen
// templates produce plus the classic OpenSSH forms.
func authFailure(content string) (user string, ok bool) {
	if i := strings.Index(content, "Failed password for "); i >= 0 {
		rest := content[i+len("Failed password for "):]
		rest = strings.TrimPrefix(rest, "invalid user ")
		return cutAt(rest, " from "), true
	}
	if i := strings.Index(content, "Invalid user "); i >= 0 {
		return cutAt(content[i+len("Invalid user "):], " from "), true
	}
	if i := strings.Index(content, "FAILED su for "); i >= 0 {
		// "FAILED su for root by attacker ..." — the attempting user
		// follows "by".
		rest := content[i+len("FAILED su for "):]
		if j := strings.Index(rest, " by "); j >= 0 {
			return cutAt(rest[j+len(" by "):], " "), true
		}
		return "", true
	}
	if strings.Contains(content, " NOT in sudoers") {
		// "alice : user NOT in sudoers ; TTY=..." — the user leads.
		return cutAt(content, " : "), true
	}
	if strings.Contains(content, "authentication failure") {
		if i := strings.Index(content, "user="); i >= 0 {
			return cutAt(content[i+len("user="):], " "), true
		}
		return "", true
	}
	if strings.Contains(content, "ANOM_LOGIN_FAILURES") {
		return "", true
	}
	return "", false
}

// cutAt returns s up to the first occurrence of sep (all of s when
// absent). Pure slicing — the result aliases s.
func cutAt(s, sep string) string {
	if i := strings.Index(s, sep); i >= 0 {
		return s[:i]
	}
	return s
}

// preauthConn reports whether content is a pre-authentication connection
// event — the raw material of scan detection — and extracts the client
// port. Covers "Connection closed by HOST port N [preauth]" and the
// timeout/disconnect variants; lines without a parseable port are not
// scan evidence and report false.
func preauthConn(content string) (port int, ok bool) {
	if !strings.Contains(content, "preauth") {
		return 0, false
	}
	i := strings.Index(content, " port ")
	if i < 0 {
		return 0, false
	}
	p, digits := 0, 0
	for j := i + len(" port "); j < len(content); j++ {
		c := content[j] - '0'
		if c > 9 {
			break
		}
		p = p*10 + int(c)
		digits++
		if p > 1<<30 {
			return 0, false
		}
	}
	if digits == 0 {
		return 0, false
	}
	return p, true
}
