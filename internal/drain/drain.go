// Package drain implements a fixed-depth online log-template miner in the
// style of Drain (He et al., ICWS 2017) — the technique the LogPAI
// ecosystem popularized and the modern successor to the paper's
// Levenshtein bucketing (§3): instead of character edit distance against
// every exemplar, messages route through a parse tree keyed on token count
// and leading tokens, then match cluster templates by token-wise
// similarity. Matching is O(depth + clusters-in-leaf), independent of the
// total template count, and templates generalize by replacing divergent
// positions with a wildcard — so "CPU 3 throttled" and "CPU 14 throttled"
// share the template "CPU <*> throttled" without any retraining.
package drain

import (
	"sort"
	"strings"
	"sync"
)

// Wildcard is the template placeholder for variable tokens.
const Wildcard = "<*>"

// Cluster is one mined template with its usage count.
type Cluster struct {
	ID       int
	Template []string
	Count    int
	// Label is optional user metadata (e.g., a taxonomy category), the
	// equivalent of labelling a bucket exemplar.
	Label string
}

// TemplateString renders the template tokens as one line.
func (c *Cluster) TemplateString() string { return strings.Join(c.Template, " ") }

// Miner is the online parser. It is safe for concurrent use.
type Miner struct {
	// Depth is the number of leading tokens used as tree keys
	// (default 2, within the range Drain recommends).
	Depth int
	// SimThreshold is the minimum fraction of matching tokens to join a
	// cluster (default 0.5).
	SimThreshold float64
	// MaxChildren caps branches per internal node; overflow routes
	// through a wildcard branch (default 100).
	MaxChildren int

	mu       sync.Mutex
	root     map[int]*node // token count -> subtree
	clusters []*Cluster
}

type node struct {
	children map[string]*node
	clusters []*Cluster
}

// NewMiner returns a miner with Drain's usual defaults.
func NewMiner() *Miner {
	return &Miner{Depth: 2, SimThreshold: 0.5, MaxChildren: 100, root: make(map[int]*node)}
}

// numeric reports whether the token contains any digit; such tokens are
// treated as parameters when used as tree keys (Drain's preprocessing).
func numeric(tok string) bool {
	for i := 0; i < len(tok); i++ {
		if tok[i] >= '0' && tok[i] <= '9' {
			return true
		}
	}
	return false
}

// Observe routes one message, returning its cluster and whether the
// message minted a new template.
func (m *Miner) Observe(message string) (*Cluster, bool) {
	tokens := strings.Fields(message)
	m.mu.Lock()
	defer m.mu.Unlock()

	leaf := m.leafFor(tokens, true)
	best, bestSim := (*Cluster)(nil), 0.0
	for _, c := range leaf.clusters {
		sim := similarity(c.Template, tokens)
		if sim > bestSim {
			bestSim, best = sim, c
		}
	}
	if best != nil && bestSim >= m.simThreshold() {
		best.Count++
		merge(best.Template, tokens)
		return best, false
	}
	c := &Cluster{ID: len(m.clusters), Template: append([]string(nil), tokens...), Count: 1}
	m.clusters = append(m.clusters, c)
	leaf.clusters = append(leaf.clusters, c)
	return c, true
}

// Match routes a message without updating any state; nil when no template
// is close enough.
func (m *Miner) Match(message string) *Cluster {
	tokens := strings.Fields(message)
	m.mu.Lock()
	defer m.mu.Unlock()
	leaf := m.leafFor(tokens, false)
	if leaf == nil {
		return nil
	}
	best, bestSim := (*Cluster)(nil), 0.0
	for _, c := range leaf.clusters {
		sim := similarity(c.Template, tokens)
		if sim > bestSim {
			bestSim, best = sim, c
		}
	}
	if best == nil || bestSim < m.simThreshold() {
		return nil
	}
	return best
}

func (m *Miner) simThreshold() float64 {
	if m.SimThreshold <= 0 || m.SimThreshold > 1 {
		return 0.5
	}
	return m.SimThreshold
}

// leafFor walks (and optionally grows) the parse tree: token count first,
// then Depth leading tokens (digit-bearing tokens and overflow collapse to
// the wildcard branch).
func (m *Miner) leafFor(tokens []string, create bool) *node {
	if m.root == nil {
		if !create {
			return nil
		}
		m.root = make(map[int]*node)
	}
	depth := m.Depth
	if depth <= 0 {
		depth = 2
	}
	maxChildren := m.MaxChildren
	if maxChildren <= 0 {
		maxChildren = 100
	}
	cur, ok := m.root[len(tokens)]
	if !ok {
		if !create {
			return nil
		}
		cur = &node{children: make(map[string]*node)}
		m.root[len(tokens)] = cur
	}
	for d := 0; d < depth && d < len(tokens); d++ {
		key := tokens[d]
		if numeric(key) {
			key = Wildcard
		}
		next, ok := cur.children[key]
		if !ok {
			if len(cur.children) >= maxChildren {
				key = Wildcard
				next, ok = cur.children[key]
			}
			if !ok {
				if !create {
					return nil
				}
				next = &node{children: make(map[string]*node)}
				cur.children[key] = next
			}
		}
		cur = next
	}
	return cur
}

// similarity is the fraction of positions where template and tokens agree
// (wildcards count as matches). Lengths are equal by construction.
func similarity(template, tokens []string) float64 {
	if len(template) == 0 {
		return 0
	}
	same := 0
	for i := range template {
		if template[i] == Wildcard || template[i] == tokens[i] {
			same++
		}
	}
	return float64(same) / float64(len(template))
}

// merge generalizes the template in place: divergent positions become
// wildcards.
func merge(template, tokens []string) {
	for i := range template {
		if template[i] != Wildcard && template[i] != tokens[i] {
			template[i] = Wildcard
		}
	}
}

// Clusters returns a snapshot of all templates, most frequent first.
func (m *Miner) Clusters() []*Cluster {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Cluster, len(m.clusters))
	copy(out, m.clusters)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Len returns the number of mined templates.
func (m *Miner) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.clusters)
}

// Label attaches metadata to a cluster id.
func (m *Miner) Label(id int, label string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || id >= len(m.clusters) {
		return false
	}
	m.clusters[id].Label = label
	return true
}
