package drain

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"hetsyslog/internal/bucket"
	"hetsyslog/internal/loggen"
)

func TestTemplateGeneralization(t *testing.T) {
	m := NewMiner()
	c1, isNew := m.Observe("CPU 3 temperature above threshold")
	if !isNew {
		t.Fatal("first message should mint a template")
	}
	c2, isNew := m.Observe("CPU 14 temperature above threshold")
	if isNew || c2.ID != c1.ID {
		t.Fatal("parameter variation should join the same template")
	}
	if got := c1.TemplateString(); got != "CPU <*> temperature above threshold" {
		t.Errorf("template = %q", got)
	}
	if c1.Count != 2 {
		t.Errorf("count = %d", c1.Count)
	}
}

func TestDistinctShapesSeparate(t *testing.T) {
	m := NewMiner()
	m.Observe("Connection closed by 10.0.0.1 port 22 [preauth]")
	_, isNew := m.Observe("usb 1-1: new high-speed USB device number 4 using xhci_hcd")
	if !isNew {
		t.Error("different shapes must not merge")
	}
	if m.Len() != 2 {
		t.Errorf("templates = %d", m.Len())
	}
}

func TestMatchIsReadOnly(t *testing.T) {
	m := NewMiner()
	c, _ := m.Observe("slurmd version 22.05 differs please update")
	before := c.Count
	got := m.Match("slurmd version 23.02 differs please update")
	if got == nil || got.ID != c.ID {
		t.Fatalf("Match = %+v", got)
	}
	if c.Count != before {
		t.Error("Match mutated counts")
	}
	if m.Match("a completely different shape with many extra tokens here") != nil {
		t.Error("unrelated message matched")
	}
	if NewMiner().Match("anything at all") != nil {
		t.Error("empty miner matched")
	}
}

func TestLabelPropagation(t *testing.T) {
	m := NewMiner()
	c, _ := m.Observe("CPU 3 temperature above threshold")
	if !m.Label(c.ID, "Thermal Issue") {
		t.Fatal("label failed")
	}
	if got := m.Match("CPU 99 temperature above threshold"); got == nil || got.Label != "Thermal Issue" {
		t.Errorf("labelled match = %+v", got)
	}
	if m.Label(-1, "x") || m.Label(99, "x") {
		t.Error("out-of-range label accepted")
	}
}

func TestClustersOrdering(t *testing.T) {
	m := NewMiner()
	for i := 0; i < 5; i++ {
		m.Observe(fmt.Sprintf("frequent event number %d", i))
	}
	m.Observe("rare single event shape")
	cs := m.Clusters()
	if len(cs) != 2 || cs[0].Count < cs[1].Count {
		t.Errorf("clusters = %+v", cs)
	}
}

// TestDrainHandlesSyntheticCorpus: the miner should compress the corpus
// into far fewer templates than messages, and near the generator's actual
// template count.
func TestDrainHandlesSyntheticCorpus(t *testing.T) {
	g := loggen.NewGenerator(7)
	m := NewMiner()
	const n = 5000
	for i := 0; i < n; i++ {
		m.Observe(g.Example().Text)
	}
	if m.Len() > n/10 {
		t.Errorf("drain mined %d templates from %d messages; expected strong compression", m.Len(), n)
	}
	if m.Len() < 20 {
		t.Errorf("only %d templates; heterogeneity lost", m.Len())
	}
	t.Logf("drain: %d messages -> %d templates", n, m.Len())
}

// TestDrainSurvivesDriftBetterThanBucketing quantifies why template mining
// supersedes edit-distance bucketing: after a firmware update, wildcarded
// templates still cover much of the reworded stream.
func TestDrainSurvivesDriftBetterThanBucketing(t *testing.T) {
	g := loggen.NewGenerator(9)
	m := NewMiner()
	bk := bucket.NewBucketer()
	for i := 0; i < 4000; i++ {
		text := g.Example().Text
		m.Observe(text)
		bk.Assign(text)
	}
	for _, a := range loggen.Arches() {
		g.ApplyFirmwareUpdate(a)
	}
	drainHit, bucketHit := 0, 0
	const probe = 800
	for i := 0; i < probe; i++ {
		text := g.Example().Text
		if m.Match(text) != nil {
			drainHit++
		}
		if _, matched := bk.Peek(text); matched {
			bucketHit++
		}
	}
	if drainHit <= bucketHit {
		t.Errorf("drain coverage %d/%d should beat bucketing %d/%d post-drift",
			drainHit, probe, bucketHit, probe)
	}
	t.Logf("post-drift coverage: drain %.1f%%, bucketing %.1f%%",
		100*float64(drainHit)/probe, 100*float64(bucketHit)/probe)
}

func TestConcurrentObserve(t *testing.T) {
	m := NewMiner()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Observe(fmt.Sprintf("worker event %d in group %d", i%5, w%3))
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range m.Clusters() {
		total += c.Count
	}
	if total != 1600 {
		t.Errorf("counts total %d, want 1600", total)
	}
}

func TestWildcardBranchOverflow(t *testing.T) {
	m := NewMiner()
	m.MaxChildren = 3
	// More distinct leading tokens than MaxChildren: overflow must not
	// lose messages.
	for i := 0; i < 10; i++ {
		m.Observe(strings.Repeat("x", i+1) + " common tail here")
	}
	total := 0
	for _, c := range m.Clusters() {
		total += c.Count
	}
	if total != 10 {
		t.Errorf("lost messages under overflow: %d", total)
	}
}

func BenchmarkDrainObserve(b *testing.B) {
	g := loggen.NewGenerator(1)
	msgs := make([]string, 2000)
	for i := range msgs {
		msgs[i] = g.Example().Text
	}
	m := NewMiner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(msgs[i%len(msgs)])
	}
}

// BenchmarkBucketerAssign is the head-to-head cost comparison with the
// paper's Levenshtein bucketing on the same stream.
func BenchmarkBucketerAssign(b *testing.B) {
	g := loggen.NewGenerator(1)
	msgs := make([]string, 2000)
	for i := range msgs {
		msgs[i] = g.Example().Text
	}
	bk := bucket.NewBucketer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk.Assign(msgs[i%len(msgs)])
	}
}
