package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache serializes runtime.ReadMemStats behind a staleness window:
// the read stops the world briefly, and one Prometheus scrape asks for
// several gauges back to back, so a scrape burst should pay for exactly
// one read.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	snap runtime.MemStats
}

func (c *memStatsCache) load() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) >= time.Second {
		runtime.ReadMemStats(&c.snap)
		c.at = now
	}
	return &c.snap
}

// RegisterRuntimeMemStats exposes the Go runtime's memory and GC activity
// on r, for tracking how hard the collector's retained corpus works the
// garbage collector:
//
//	heap_alloc_bytes — bytes of live + not-yet-swept heap objects
//	heap_sys_bytes   — heap memory obtained from the OS
//	gc_pause_ns      — cumulative stop-the-world pause time
//	gc_cycles_total  — completed GC cycles
//
// All four gauges share one cached runtime.ReadMemStats snapshot refreshed
// at most once per second, so a multi-gauge scrape costs a single read.
func RegisterRuntimeMemStats(r *Registry) {
	if r == nil {
		return
	}
	c := &memStatsCache{}
	r.GaugeFunc("heap_alloc_bytes", "bytes of allocated heap objects",
		func() int64 { return int64(c.load().HeapAlloc) })
	r.GaugeFunc("heap_sys_bytes", "heap memory obtained from the OS",
		func() int64 { return int64(c.load().HeapSys) })
	r.GaugeFunc("gc_pause_ns", "cumulative GC stop-the-world pause time",
		func() int64 { return int64(c.load().PauseTotalNs) })
	r.GaugeFunc("gc_cycles_total", "completed GC cycles",
		func() int64 { return int64(c.load().NumGC) })
}
