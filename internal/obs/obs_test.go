package obs

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", ""); again != c {
		t.Error("re-registration must return the same counter")
	}

	g := r.Gauge("queue_depth", "records queued")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	if c.Value() != 1 {
		t.Error("nil registry must hand out a working standalone counter")
	}
	g := r.Gauge("g", "")
	g.Set(3)
	if g.Value() != 3 {
		t.Error("nil registry must hand out a working standalone gauge")
	}
	h := r.Histogram("h", "", SizeBuckets)
	h.Observe(2)
	if h.Count() != 1 {
		t.Error("nil registry must hand out a working standalone histogram")
	}
	r.GaugeFunc("f", "", func() int64 { return 1 }) // must not panic
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}

	var nc *Counter
	nc.Inc()
	nc.Add(2)
	if nc.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	var ng *Gauge
	ng.Set(1)
	ng.Add(1)
	var nh *Histogram
	nh.Observe(1)
	nh.ObserveDuration(time.Second)
	if nh.Count() != 0 || nh.Sum() != 0 {
		t.Error("nil histogram must read 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	// le=0.1 holds 0.05 and 0.1 (inclusive upper bound); le=1 adds 0.5;
	// le=10 adds 5; +Inf adds 100.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if sum < 105.6 || sum > 105.7 {
		t.Errorf("sum = %v", sum)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`frames_total{transport="udp"}`, "frames by transport").Add(3)
	r.Counter(`frames_total{transport="tcp"}`, "frames by transport").Add(7)
	r.Gauge("queue_depth", "queued records").Set(42)
	r.GaugeFunc("tracked", "live entries", func() int64 { return 9 })
	h := r.Histogram("flush_seconds", "flush latency", []float64{0.01, 0.1})
	h.ObserveDuration(5 * time.Millisecond)
	h.ObserveDuration(500 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE frames_total counter\n",
		`frames_total{transport="udp"} 3` + "\n",
		`frames_total{transport="tcp"} 7` + "\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 42\n",
		"tracked 9\n",
		"# TYPE flush_seconds histogram\n",
		`flush_seconds_bucket{le="0.01"} 1` + "\n",
		`flush_seconds_bucket{le="0.1"} 1` + "\n",
		`flush_seconds_bucket{le="+Inf"} 2` + "\n",
		"flush_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family, even with two label variants.
	if n := strings.Count(out, "# TYPE frames_total "); n != 1 {
		t.Errorf("frames_total TYPE lines = %d, want 1", n)
	}

	// Every non-comment line must be "series value".
	lineRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+$`)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 1") {
		t.Errorf("body = %q", buf[:n])
	}
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	h := r.Histogram("lat_seconds", "", LatencyBuckets)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(1e-4)
			}
		}()
	}
	// Scrape while updates are in flight; under -race this is the
	// registry's concurrency audit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8})
	var nilH *Histogram
	if nilH.Mean() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must report zero mean/quantile")
	}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zero mean/quantile")
	}
	// 100 observations spread evenly through (0,4]: mean ~2.02, median ~2.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if m := h.Mean(); m < 1.9 || m > 2.1 {
		t.Errorf("Mean = %v, want ~2.02", m)
	}
	if q := h.Quantile(0.5); q < 1.8 || q > 2.2 {
		t.Errorf("Quantile(0.5) = %v, want ~2", q)
	}
	if q := h.Quantile(1); q < 3.9 || q > 4.1 {
		t.Errorf("Quantile(1) = %v, want ~4", q)
	}
	// Above the last finite bound: clamps to it.
	h2 := r.Histogram("lat2", "", []float64{1})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 1 {
		t.Errorf("overflow Quantile = %v, want clamp to 1", q)
	}
}
