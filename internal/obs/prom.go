package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// contentType is the Prometheus text exposition format media type.
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in Prometheus text
// format, sorted by series name so label variants of one family stay
// adjacent under a single HELP/TYPE header. Safe to call concurrently
// with metric updates; scrapes see each atomic independently.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	metrics := make(map[string]any, len(r.metrics))
	for n, m := range r.metrics {
		metrics[n] = m
	}
	help := make(map[string]string, len(r.help))
	for f, h := range r.help {
		help[f] = h
	}
	r.mu.Unlock()

	sort.Strings(names)
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, name := range names {
		f := family(name)
		if f != lastFamily {
			lastFamily = f
			if h := help[f]; h != "" {
				bw.WriteString("# HELP " + f + " " + escapeHelp(h) + "\n")
			}
			bw.WriteString("# TYPE " + f + " " + typeOf(metrics[name]) + "\n")
		}
		switch m := metrics[name].(type) {
		case *Counter:
			bw.WriteString(name + " " + strconv.FormatInt(m.Value(), 10) + "\n")
		case *Gauge:
			bw.WriteString(name + " " + strconv.FormatInt(m.Value(), 10) + "\n")
		case *gaugeFunc:
			bw.WriteString(name + " " + strconv.FormatInt(m.fn(), 10) + "\n")
		case *floatGaugeFunc:
			bw.WriteString(name + " " + formatFloat(m.fn()) + "\n")
		case *Histogram:
			cum, count, sum := m.snapshot()
			for i, bound := range m.bounds {
				bw.WriteString(name + `_bucket{le="` + formatFloat(bound) + `"} ` +
					strconv.FormatInt(cum[i], 10) + "\n")
			}
			bw.WriteString(name + `_bucket{le="+Inf"} ` +
				strconv.FormatInt(cum[len(cum)-1], 10) + "\n")
			bw.WriteString(name + "_sum " + formatFloat(sum) + "\n")
			bw.WriteString(name + "_count " + strconv.FormatInt(count, 10) + "\n")
		}
	}
	return bw.Flush()
}

func typeOf(m any) string {
	switch m.(type) {
	case *Counter:
		return "counter"
	case *Gauge, *gaugeFunc, *floatGaugeFunc:
		return "gauge"
	case *Histogram:
		return "histogram"
	}
	return "untyped"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", contentType)
		_ = r.WritePrometheus(w)
	})
}
