// Package obs is the reproduction's observability layer: a small,
// dependency-free metrics registry with Prometheus text-format exposition.
// The paper's deployment watches the pipeline itself through
// Grafana-over-OpenSearch (§4.2, §4.5); here every stage — syslog server,
// collector pipeline, dedup filter, classifier service, Tivan store —
// publishes counters, gauges and latency histograms into a shared
// *Registry that a scrape endpoint exports.
//
// Design constraints, in order:
//
//  1. Hot-path cost: a counter increment is one atomic add; a histogram
//     observation is a binary search over a handful of float64 bounds
//     plus three atomic adds. No locks, no allocation, no map lookups
//     after registration.
//  2. Optionality: every metric type no-ops on a nil receiver, and a nil
//     *Registry hands out standalone (unexported) metrics, so components
//     keep exact counts for their Stats() accessors whether or not
//     anything scrapes them. Code instruments unconditionally; wiring a
//     registry is a deployment decision.
//  3. Zero dependencies: exposition is hand-rolled Prometheus text
//     format (version 0.0.4), which is a stable, trivially generated
//     line protocol.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; all methods are safe on a nil receiver (no-ops / zero reads), so
// uninstrumented components pay only a predictable branch.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to any registry.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n (n must be non-negative for Prometheus
// semantics; this is not enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge not attached to any registry.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: Bounds are inclusive upper limits ("le"), with an implicit +Inf
// bucket at the end. Observations and exposition are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	// sum accumulates in micro-units (value * 1e6) so it stays a single
	// atomic add; exposition divides back out. Micro precision is ample
	// for latencies (µs) and batch sizes.
	sumMicro atomic.Int64
}

// NewHistogram returns a standalone histogram with the given ascending
// upper bounds. A nil or empty bounds slice yields a single +Inf bucket.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Smallest i with bounds[i] >= v, i.e. the first "le" bucket that
	// contains v; len(bounds) means +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(int64(v * 1e6))
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumMicro.Load()) / 1e6
}

// Mean returns the average observed value (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket holding it, the same estimate
// Prometheus' histogram_quantile gives. Observations above the last
// finite bound clamp to that bound. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum, count, _ := h.snapshot()
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(h.bounds) {
		return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
	}
	lo := 0.0
	var below int64
	if i > 0 {
		lo = h.bounds[i-1]
		below = cum[i-1]
	}
	in := cum[i] - below
	if in == 0 {
		return h.bounds[i]
	}
	return lo + (h.bounds[i]-lo)*(rank-float64(below))/float64(in)
}

// snapshot returns cumulative bucket counts aligned with bounds + the
// +Inf bucket, plus total count and sum. Reads are atomic per bucket;
// a scrape concurrent with observations may be off by the in-flight
// observation, which Prometheus tolerates by design.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}

// LatencyBuckets is the default bound set for latency histograms: 5µs to
// 10s, roughly log-spaced — wide enough to cover a sub-µs classify step
// and a multi-second flush against a struggling sink.
var LatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// SizeBuckets is the default bound set for size histograms (batch sizes,
// queue lengths): powers of two up to 4096.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// ByteBuckets is the default bound set for payload-size histograms (wire
// batches, codec output): 64 B to 16 MiB, powers of four.
var ByteBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}

// Registry holds named metrics for exposition. All methods are safe for
// concurrent use and safe on a nil receiver: a nil registry hands out
// standalone metrics (counters/gauges/histograms that still count, so
// Stats() accessors stay exact) and registers nothing — instrumented
// code never branches on whether observability is wired up.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any    // full series name (may include {labels}) -> metric
	help    map[string]string // family name -> help text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any), help: make(map[string]string)}
}

// family strips a {labels} suffix from a series name.
func family(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// Counter returns the counter registered under name, creating it if
// needed. name may carry a label suffix (`frames_total{transport="udp"}`);
// series sharing a family share one HELP/TYPE header. Registration is
// idempotent: the same name always returns the same counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return NewCounter()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if c, ok := m.(*Counter); ok {
			return c
		}
	}
	c := NewCounter()
	r.metrics[name] = c
	r.setHelpLocked(name, help)
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return NewGauge()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if g, ok := m.(*Gauge); ok {
			return g
		}
	}
	g := NewGauge()
	r.metrics[name] = g
	r.setHelpLocked(name, help)
	return g
}

// gaugeFunc is a gauge whose value is computed at scrape time.
type gaugeFunc struct{ fn func() int64 }

// floatGaugeFunc is a float-valued gauge computed at scrape time, for
// ratios and other fractional readings an int64 gauge would truncate.
type floatGaugeFunc struct{ fn func() float64 }

// GaugeFunc registers a gauge evaluated lazily at scrape time — ideal for
// values that already exist (queue length, map size) where per-event
// updates would cost hot-path atomics. Re-registering a name replaces the
// callback. fn must be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &gaugeFunc{fn: fn}
	r.setHelpLocked(name, help)
}

// GaugeFuncFloat registers a float-valued gauge evaluated lazily at
// scrape time — the fractional counterpart of GaugeFunc, used for ratios
// (e.g. cache hit rate) that an int64 gauge would truncate to 0 or 1.
// Re-registering a name replaces the callback. fn must be safe to call
// from the scrape goroutine.
func (r *Registry) GaugeFuncFloat(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &floatGaugeFunc{fn: fn}
	r.setHelpLocked(name, help)
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds if needed. Histogram names must not carry labels.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if h, ok := m.(*Histogram); ok {
			return h
		}
	}
	h := NewHistogram(bounds)
	r.metrics[name] = h
	r.setHelpLocked(name, help)
	return h
}

func (r *Registry) setHelpLocked(name, help string) {
	f := family(name)
	if help != "" && r.help[f] == "" {
		r.help[f] = help
	}
}
