package tfidf

import (
	"math"
	"strings"
	"testing"
)

func toks(s string) []string { return strings.Fields(s) }

func TestVocabularyCounts(t *testing.T) {
	v := NewVocabulary()
	v.AddDoc(toks("cpu temperature cpu"))
	v.AddDoc(toks("cpu clock"))
	if v.Size() != 3 {
		t.Errorf("Size = %d", v.Size())
	}
	if v.NumDocs() != 2 {
		t.Errorf("NumDocs = %d", v.NumDocs())
	}
	if v.DocFreq("cpu") != 2 {
		t.Errorf("DocFreq(cpu) = %d, want 2 (per-document, not per-occurrence)", v.DocFreq("cpu"))
	}
	if v.DocFreq("clock") != 1 || v.DocFreq("absent") != 0 {
		t.Error("DocFreq wrong for clock/absent")
	}
	if v.Index("temperature") < 0 || v.Index("absent") != -1 {
		t.Error("Index lookup wrong")
	}
}

func TestVectorizerIDFWeighting(t *testing.T) {
	// "common" appears in every doc, "rare" in one: rare must out-weigh
	// common in the doc containing both once each.
	corpus := [][]string{
		toks("common rare"),
		toks("common other"),
		toks("common third"),
	}
	vz := &Vectorizer{}
	m := vz.FitTransform(corpus)
	row := m.Rows[0]
	common := vz.FeatureIndex("common")
	rare := vz.FeatureIndex("rare")
	if row.At(rare) <= row.At(common) {
		t.Errorf("rare term weight %v should exceed common term weight %v",
			row.At(rare), row.At(common))
	}
}

func TestVectorizerNormalized(t *testing.T) {
	vz := &Vectorizer{}
	m := vz.FitTransform([][]string{toks("a b c"), toks("a d")})
	for i, r := range m.Rows {
		if math.Abs(r.Norm()-1) > 1e-12 {
			t.Errorf("row %d norm = %v", i, r.Norm())
		}
	}
}

func TestVectorizerUnknownTermsIgnored(t *testing.T) {
	vz := &Vectorizer{}
	vz.Fit([][]string{toks("known words only")})
	v := vz.Transform(toks("totally novel input"))
	if v.NNZ() != 0 {
		t.Errorf("unknown-term vector nnz = %d", v.NNZ())
	}
}

func TestVectorizerMinDF(t *testing.T) {
	corpus := [][]string{
		toks("keep drop1"),
		toks("keep drop2"),
		toks("keep drop3"),
	}
	vz := &Vectorizer{MinDF: 2}
	vz.Fit(corpus)
	if vz.Dims() != 1 {
		t.Errorf("Dims = %d, want 1 (only 'keep' survives)", vz.Dims())
	}
	if vz.FeatureIndex("keep") < 0 || vz.FeatureIndex("drop1") != -1 {
		t.Error("MinDF pruning wrong")
	}
}

func TestVectorizerMaxFeatures(t *testing.T) {
	corpus := [][]string{
		toks("a b"), toks("a b"), toks("a c"), toks("a d"),
	}
	vz := &Vectorizer{MaxFeatures: 2}
	vz.Fit(corpus)
	if vz.Dims() != 2 {
		t.Fatalf("Dims = %d", vz.Dims())
	}
	// a (df=4) and b (df=2) are the most frequent
	if vz.FeatureIndex("a") < 0 || vz.FeatureIndex("b") < 0 {
		t.Error("MaxFeatures kept wrong terms")
	}
	if vz.FeatureIndex("c") != -1 {
		t.Error("c should be pruned")
	}
}

func TestSublinearTF(t *testing.T) {
	corpus := [][]string{toks("x x x x y"), toks("z")}
	lin := &Vectorizer{SkipNormalize: true}
	lin.Fit(corpus)
	sub := &Vectorizer{Sublinear: true, SkipNormalize: true}
	sub.Fit(corpus)
	xi := lin.FeatureIndex("x")
	vLin := lin.Transform(corpus[0])
	vSub := sub.Transform(corpus[0])
	if vSub.At(xi) >= vLin.At(xi) {
		t.Errorf("sublinear tf %v should damp linear tf %v", vSub.At(xi), vLin.At(xi))
	}
}

func TestTransformBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&Vectorizer{}).Transform(toks("x"))
}

func TestClassTopTerms(t *testing.T) {
	docs := map[string][][]string{
		"Thermal Issue": {
			toks("cpu temperature above threshold throttled"),
			toks("processor sensor temperature throttled cpu"),
			toks("temperature sensor throttled processor cpu"),
		},
		"USB Device": {
			toks("usb device hub new number"),
			toks("new usb device number hub"),
		},
		"SSH Connection": {
			toks("connection closed preauth port user"),
			toks("closed connection port preauth user"),
		},
	}
	top := ClassTopTerms(docs, 5)
	if len(top) != 3 {
		t.Fatalf("classes = %d", len(top))
	}
	hasTerm := func(class, term string) bool {
		for _, ts := range top[class] {
			if ts.Term == term {
				return true
			}
		}
		return false
	}
	if !hasTerm("Thermal Issue", "temperature") || !hasTerm("Thermal Issue", "throttled") {
		t.Errorf("Thermal top terms = %v", top["Thermal Issue"])
	}
	if !hasTerm("USB Device", "usb") {
		t.Errorf("USB top terms = %v", top["USB Device"])
	}
	if hasTerm("USB Device", "temperature") {
		t.Errorf("cross-class leak: %v", top["USB Device"])
	}
	// scores must be sorted descending
	for c, terms := range top {
		for i := 1; i < len(terms); i++ {
			if terms[i].Score > terms[i-1].Score {
				t.Errorf("class %s scores not sorted: %v", c, terms)
			}
		}
	}
}

func TestFormatTopTerms(t *testing.T) {
	top := map[string][]TermScore{
		"B": {{Term: "bbb", Score: 2}},
		"A": {{Term: "aaa", Score: 1}, {Term: "aa2", Score: 0.5}},
	}
	out := FormatTopTerms(top)
	if !strings.Contains(out, "aaa, aa2") || !strings.Contains(out, "bbb") {
		t.Errorf("FormatTopTerms = %q", out)
	}
	// A row should come before B row
	if strings.Index(out, "aaa") > strings.Index(out, "bbb") {
		t.Error("classes not sorted")
	}
}

func TestTermAtInverseOfFeatureIndex(t *testing.T) {
	vz := &Vectorizer{}
	vz.Fit([][]string{toks("alpha beta gamma"), toks("beta delta")})
	for _, term := range []string{"alpha", "beta", "gamma", "delta"} {
		f := vz.FeatureIndex(term)
		if f < 0 {
			t.Fatalf("FeatureIndex(%q) = %d", term, f)
		}
		if got := vz.TermAt(f); got != term {
			t.Errorf("TermAt(FeatureIndex(%q)) = %q", term, got)
		}
	}
}

func BenchmarkTransform(b *testing.B) {
	corpus := make([][]string, 1000)
	for i := range corpus {
		corpus[i] = toks("error node has low real_memory size threshold cpu temperature sensor")
		corpus[i] = append(corpus[i], string(rune('a'+i%26)))
	}
	vz := &Vectorizer{Sublinear: true}
	vz.Fit(corpus)
	doc := corpus[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vz.Transform(doc)
	}
}
