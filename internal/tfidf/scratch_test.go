package tfidf

import (
	"fmt"
	"testing"

	"hetsyslog/internal/raceflag"
)

func fittedVectorizer(sublinear bool, minDF int) (*Vectorizer, [][]string) {
	corpus := [][]string{
		{"cpu", "temperature", "throttle", "cpu", "sensor"},
		{"memory", "size", "low", "node", "real_memory"},
		{"connection", "close", "port", "preauth", "user"},
		{"cpu", "clock", "throttle", "firmware"},
		{"usb", "device", "hub", "new", "number"},
		{"temperature", "sensor", "exceed", "threshold", "cpu"},
	}
	vz := &Vectorizer{Sublinear: sublinear, MinDF: minDF}
	vz.Fit(corpus)
	return vz, corpus
}

// TestTransformIntoMatchesTransform requires the scratch path to return
// byte-identical vectors to the map-based path, including unknown and
// pruned tokens, repeated terms, and the empty document.
func TestTransformIntoMatchesTransform(t *testing.T) {
	for _, sublinear := range []bool{false, true} {
		for _, minDF := range []int{0, 2} {
			vz, corpus := fittedVectorizer(sublinear, minDF)
			docs := append([][]string{
				{},
				{"unseen", "tokens", "only"},
				{"cpu", "cpu", "cpu", "temperature", "unseen"},
			}, corpus...)
			var sc TransformScratch
			for _, doc := range docs {
				want := vz.Transform(doc)
				got := vz.TransformInto(doc, &sc)
				if fmt.Sprint(got.Idx) != fmt.Sprint(want.Idx) ||
					fmt.Sprint(got.Val) != fmt.Sprint(want.Val) {
					t.Errorf("sublinear=%v minDF=%d doc %q:\n got %v %v\nwant %v %v",
						sublinear, minDF, doc, got.Idx, got.Val, want.Idx, want.Val)
				}
				if err := got.Validate(); err != nil {
					t.Errorf("doc %q: %v", doc, err)
				}
			}
		}
	}
}

// TestTransformIntoSteadyStateAllocs asserts the warm scratch path is
// allocation free.
func TestTransformIntoSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	vz, _ := fittedVectorizer(true, 0)
	doc := []string{"cpu", "temperature", "throttle", "cpu", "sensor", "threshold"}
	var sc TransformScratch
	vz.TransformInto(doc, &sc) // size the buffers
	allocs := testing.AllocsPerRun(200, func() {
		vz.TransformInto(doc, &sc)
	})
	if allocs != 0 {
		t.Errorf("warm TransformInto allocates %.1f objects/op, want 0", allocs)
	}
}
