package tfidf_test

import (
	"fmt"
	"strings"

	"hetsyslog/internal/tfidf"
)

func ExampleVectorizer() {
	corpus := [][]string{
		strings.Fields("cpu temperature above threshold throttle"),
		strings.Fields("connection close port preauth"),
		strings.Fields("usb device hub new number"),
	}
	vz := &tfidf.Vectorizer{Sublinear: true}
	X := vz.FitTransform(corpus)
	fmt.Println("docs:", X.NRows(), "features:", vz.Dims())

	// Transform new text through the fitted vocabulary; unknown terms
	// are dropped.
	v := vz.Transform(strings.Fields("cpu throttle overheating"))
	fmt.Println("nonzeros:", v.NNZ())
	// Output:
	// docs: 3 features: 14
	// nonzeros: 2
}

func ExampleClassTopTerms() {
	docs := map[string][][]string{
		"Thermal": {
			strings.Fields("cpu temperature throttle sensor"),
			strings.Fields("temperature sensor cpu overheat"),
		},
		"USB": {
			strings.Fields("usb device hub"),
			strings.Fields("usb hub new device usb"),
		},
	}
	top := tfidf.ClassTopTerms(docs, 2)
	fmt.Println(top["USB"][0].Term)
	// Output: usb
}
