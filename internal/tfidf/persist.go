package tfidf

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// vectorizerState serializes a fitted Vectorizer: configuration, the raw
// vocabulary (terms + document frequencies), and the pruned feature space.
type vectorizerState struct {
	Sublinear     bool
	MinDF         int
	MaxFeatures   int
	SkipNormalize bool

	Terms []string
	DF    []int
	NDocs int
	Remap []int32
	IDF   []float64
	Dims  int
}

// MarshalBinary implements encoding.BinaryMarshaler for a fitted
// vectorizer.
func (vz *Vectorizer) MarshalBinary() ([]byte, error) {
	if vz.vocab == nil {
		return nil, fmt.Errorf("tfidf: cannot serialize an unfitted vectorizer")
	}
	st := vectorizerState{
		Sublinear: vz.Sublinear, MinDF: vz.MinDF, MaxFeatures: vz.MaxFeatures,
		SkipNormalize: vz.SkipNormalize,
		Terms:         vz.vocab.terms, DF: vz.vocab.df, NDocs: vz.vocab.nDocs,
		Remap: vz.remap, IDF: vz.idf, Dims: vz.dims,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (vz *Vectorizer) UnmarshalBinary(data []byte) error {
	var st vectorizerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st.Terms) != len(st.DF) || len(st.Terms) != len(st.Remap) {
		return fmt.Errorf("tfidf: inconsistent vectorizer state")
	}
	vz.Sublinear, vz.MinDF, vz.MaxFeatures = st.Sublinear, st.MinDF, st.MaxFeatures
	vz.SkipNormalize = st.SkipNormalize
	vocab := NewVocabulary()
	vocab.terms = st.Terms
	vocab.df = st.DF
	vocab.nDocs = st.NDocs
	for i, t := range st.Terms {
		vocab.index[t] = int32(i)
	}
	vz.vocab = vocab
	vz.remap, vz.idf, vz.dims = st.Remap, st.IDF, st.Dims
	return nil
}
