package tfidf

import (
	"math"

	"hetsyslog/internal/sparse"
)

// HashingVectorizer maps tokens to a fixed-size feature space with a hash
// function instead of a learned vocabulary (the "hashing trick"). It
// needs no Fit pass and no vocabulary memory — attractive for a stream
// that grows by a million messages an hour — at the cost of collisions
// and of losing Table 1 style interpretability (you cannot ask a hash
// bucket what word it is). It exists as the DESIGN.md ablation partner of
// the vocabulary Vectorizer.
type HashingVectorizer struct {
	// Dims is the feature-space size (default 1 << 18).
	Dims int
	// Sublinear applies 1+ln(tf) damping.
	Sublinear bool
	// SkipNormalize disables the final L2 normalization.
	SkipNormalize bool
	// Signed flips half the buckets' contribution sign (reduces collision
	// bias, as in scikit-learn's HashingVectorizer).
	Signed bool
}

// NewHashingVectorizer returns the default configuration.
func NewHashingVectorizer() *HashingVectorizer {
	return &HashingVectorizer{Dims: 1 << 18, Sublinear: true, Signed: true}
}

// fnv1a64 is inlined here to keep the hot path allocation-free.
func fnv1a64(s string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Transform converts one tokenized document to a hashed feature vector.
func (hv *HashingVectorizer) Transform(tokens []string) sparse.Vector {
	dims := hv.Dims
	if dims <= 0 {
		dims = 1 << 18
	}
	counts := make(map[int32]float64, len(tokens))
	for _, t := range tokens {
		h := fnv1a64(t)
		f := int32(h % uint64(dims))
		sign := 1.0
		if hv.Signed && (h>>63) == 1 {
			sign = -1
		}
		counts[f] += sign
	}
	for f, v := range counts {
		if v == 0 {
			delete(counts, f)
			continue
		}
		if hv.Sublinear {
			a := math.Abs(v)
			counts[f] = math.Copysign(1+math.Log(a), v)
		}
	}
	v := sparse.NewVectorFromMap(counts)
	if !hv.SkipNormalize {
		v.Normalize()
	}
	return v
}

// TransformAll converts a corpus.
func (hv *HashingVectorizer) TransformAll(corpus [][]string) *sparse.Matrix {
	dims := hv.Dims
	if dims <= 0 {
		dims = 1 << 18
	}
	m := &sparse.Matrix{Rows: make([]sparse.Vector, len(corpus)), Cols: dims}
	for i, doc := range corpus {
		m.Rows[i] = hv.Transform(doc)
	}
	return m
}
