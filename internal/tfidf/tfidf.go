// Package tfidf implements Term Frequency–Inverse Document Frequency
// feature extraction (paper §4.3.1): a vocabulary builder, a vectorizer
// producing sparse feature vectors for the classifiers, and the per-class
// top-token extraction behind Table 1 (also used to seed LLM prompts).
//
// The IDF uses the smoothed formulation idf(t) = ln((1+n)/(1+df(t))) + 1,
// matching scikit-learn's TfidfVectorizer defaults so the reproduction's
// feature space behaves like the paper's.
package tfidf

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"hetsyslog/internal/sparse"
)

// Vocabulary maps terms to dense feature indices and records document
// frequencies.
type Vocabulary struct {
	index map[string]int32
	terms []string
	df    []int
	nDocs int
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int32)}
}

// Size returns the number of distinct terms.
func (v *Vocabulary) Size() int { return len(v.terms) }

// NumDocs returns how many documents have been observed.
func (v *Vocabulary) NumDocs() int { return v.nDocs }

// Term returns the term at feature index i.
func (v *Vocabulary) Term(i int32) string { return v.terms[i] }

// Index returns the feature index for term, or -1 if unknown.
func (v *Vocabulary) Index(term string) int32 {
	if i, ok := v.index[term]; ok {
		return i
	}
	return -1
}

// DocFreq returns the number of documents containing term.
func (v *Vocabulary) DocFreq(term string) int {
	if i, ok := v.index[term]; ok {
		return v.df[i]
	}
	return 0
}

// AddDoc registers one tokenized document, updating term indices and
// document frequencies.
func (v *Vocabulary) AddDoc(tokens []string) {
	v.nDocs++
	seen := make(map[int32]bool, len(tokens))
	for _, t := range tokens {
		i, ok := v.index[t]
		if !ok {
			i = int32(len(v.terms))
			v.index[t] = i
			v.terms = append(v.terms, t)
			v.df = append(v.df, 0)
		}
		if !seen[i] {
			seen[i] = true
			v.df[i]++
		}
	}
}

// Vectorizer converts tokenized documents into L2-normalized TF-IDF sparse
// vectors over a fitted vocabulary.
type Vectorizer struct {
	// Sublinear applies 1+ln(tf) term-frequency damping when true.
	Sublinear bool
	// MinDF drops terms appearing in fewer than MinDF documents (applied
	// at Fit time). Zero means keep everything.
	MinDF int
	// MaxFeatures caps the vocabulary to the most frequent terms by
	// document frequency. Zero means no cap.
	MaxFeatures int
	// SkipNormalize disables the final L2 normalization when true.
	SkipNormalize bool

	vocab *Vocabulary
	idf   []float64
	// remap translates raw vocabulary indices to pruned feature indices;
	// nil when no pruning happened.
	remap []int32
	dims  int
}

// Fit learns the vocabulary and IDF weights from a tokenized corpus.
func (vz *Vectorizer) Fit(corpus [][]string) {
	vocab := NewVocabulary()
	for _, doc := range corpus {
		vocab.AddDoc(doc)
	}
	vz.fitFromVocab(vocab)
}

func (vz *Vectorizer) fitFromVocab(vocab *Vocabulary) {
	vz.vocab = vocab
	keep := make([]int32, 0, vocab.Size())
	for i := 0; i < vocab.Size(); i++ {
		if vz.MinDF > 0 && vocab.df[i] < vz.MinDF {
			continue
		}
		keep = append(keep, int32(i))
	}
	if vz.MaxFeatures > 0 && len(keep) > vz.MaxFeatures {
		sort.Slice(keep, func(a, b int) bool {
			da, db := vocab.df[keep[a]], vocab.df[keep[b]]
			if da != db {
				return da > db
			}
			return keep[a] < keep[b]
		})
		keep = keep[:vz.MaxFeatures]
		sort.Slice(keep, func(a, b int) bool { return keep[a] < keep[b] })
	}
	vz.remap = make([]int32, vocab.Size())
	for i := range vz.remap {
		vz.remap[i] = -1
	}
	vz.idf = make([]float64, len(keep))
	n := float64(vocab.nDocs)
	for newIdx, old := range keep {
		vz.remap[old] = int32(newIdx)
		vz.idf[newIdx] = math.Log((1+n)/(1+float64(vocab.df[old]))) + 1
	}
	vz.dims = len(keep)
}

// Dims returns the feature-space width after pruning.
func (vz *Vectorizer) Dims() int { return vz.dims }

// TermAt returns the term for a (pruned) feature index.
func (vz *Vectorizer) TermAt(feature int32) string {
	for old, mapped := range vz.remap {
		if mapped == feature {
			return vz.vocab.terms[old]
		}
	}
	return ""
}

// FeatureIndex returns the pruned feature index for term, or -1.
func (vz *Vectorizer) FeatureIndex(term string) int32 {
	raw := vz.vocab.Index(term)
	if raw < 0 {
		return -1
	}
	return vz.remap[raw]
}

// IDF returns the inverse-document-frequency weight for a feature index.
func (vz *Vectorizer) IDF(feature int32) float64 { return vz.idf[feature] }

// Transform converts one tokenized document into a TF-IDF vector. Unknown
// terms are ignored (consistent with transforming test data through a
// vectorizer fitted on training data). Transform only reads the fitted
// state (vocab, remap, idf), so it is safe to call concurrently after
// Fit returns.
func (vz *Vectorizer) Transform(tokens []string) sparse.Vector {
	// A function-local scratch means the returned vector owns its memory.
	var sc TransformScratch
	return vz.TransformInto(tokens, &sc)
}

// TransformScratch holds the reusable buffers for TransformInto: the
// feature index list used for counting and the output index/value
// slices. The zero value is ready to use; a scratch must not be shared
// between goroutines.
type TransformScratch struct {
	feats []int32
	idx   []int32
	val   []float64
}

// TransformInto is Transform on reusable memory: term counting
// accumulates feature indices into a scratch list which is sorted and
// run-length counted, replacing Transform's map build and map-order sort.
// On the steady state it performs no allocations. The returned vector
// aliases sc and is valid until the next call with the same scratch; it
// is byte-identical to Transform's result for the same tokens.
func (vz *Vectorizer) TransformInto(tokens []string, sc *TransformScratch) sparse.Vector {
	if vz.vocab == nil {
		panic("tfidf: Transform before Fit")
	}
	sc.feats = sc.feats[:0]
	for _, t := range tokens {
		raw := vz.vocab.Index(t)
		if raw < 0 {
			continue
		}
		f := vz.remap[raw]
		if f < 0 {
			continue
		}
		sc.feats = append(sc.feats, f)
	}
	slices.Sort(sc.feats)
	sc.idx, sc.val = sc.idx[:0], sc.val[:0]
	for i := 0; i < len(sc.feats); {
		f := sc.feats[i]
		j := i + 1
		for j < len(sc.feats) && sc.feats[j] == f {
			j++
		}
		tf := float64(j - i)
		i = j
		if vz.Sublinear {
			tf = 1 + math.Log(tf)
		}
		sc.idx = append(sc.idx, f)
		sc.val = append(sc.val, tf*vz.idf[f])
	}
	v := sparse.NewVectorFromSorted(sc.idx, sc.val)
	if !vz.SkipNormalize {
		v.Normalize()
	}
	return v
}

// FitTransform fits on corpus and returns the transformed matrix.
func (vz *Vectorizer) FitTransform(corpus [][]string) *sparse.Matrix {
	vz.Fit(corpus)
	return vz.TransformAll(corpus)
}

// TransformAll transforms every document into a row of a sparse matrix.
func (vz *Vectorizer) TransformAll(corpus [][]string) *sparse.Matrix {
	m := &sparse.Matrix{Rows: make([]sparse.Vector, len(corpus)), Cols: vz.dims}
	for i, doc := range corpus {
		m.Rows[i] = vz.Transform(doc)
	}
	return m
}

// TermScore pairs a term with its TF-IDF score for ranking.
type TermScore struct {
	Term  string
	Score float64
}

// ClassTopTerms reproduces Table 1: treating each category's combined
// message text as one document and the set of categories as the corpus, it
// returns the top-k TF-IDF terms per category. This is also the mechanism
// that encodes "information about many syslog messages into a small prompt"
// for the LLM classifier (§4.3.1, §5.2).
func ClassTopTerms(docsByClass map[string][][]string, k int) map[string][]TermScore {
	classes := make([]string, 0, len(docsByClass))
	for c := range docsByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	// One mega-document per class.
	vocab := NewVocabulary()
	classTokens := make([][]string, len(classes))
	for ci, c := range classes {
		var all []string
		for _, doc := range docsByClass[c] {
			all = append(all, doc...)
		}
		classTokens[ci] = all
		vocab.AddDoc(all)
	}

	n := float64(len(classes))
	out := make(map[string][]TermScore, len(classes))
	for ci, c := range classes {
		counts := make(map[string]float64)
		for _, t := range classTokens[ci] {
			counts[t]++
		}
		scores := make([]TermScore, 0, len(counts))
		for term, tf := range counts {
			if term == "" || term[0] == '<' {
				continue // skip <num>/<hex>/<ip> mask tokens: frequent but uninterpretable
			}
			df := float64(vocab.DocFreq(term))
			idf := math.Log((1+n)/(1+df)) + 1
			// Linear TF: with one mega-document per class, raw term
			// frequency is the per-class volume signal Table 1 reflects.
			scores = append(scores, TermScore{Term: term, Score: tf * idf})
		}
		sort.Slice(scores, func(a, b int) bool {
			if scores[a].Score != scores[b].Score {
				return scores[a].Score > scores[b].Score
			}
			return scores[a].Term < scores[b].Term
		})
		if len(scores) > k {
			scores = scores[:k]
		}
		out[c] = scores
	}
	return out
}

// FormatTopTerms renders ClassTopTerms output as aligned text rows, used by
// the Table 1 experiment runner.
func FormatTopTerms(top map[string][]TermScore) string {
	classes := make([]string, 0, len(top))
	for c := range top {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	out := ""
	for _, c := range classes {
		out += fmt.Sprintf("%-22s", c)
		for i, ts := range top[c] {
			if i > 0 {
				out += ", "
			}
			out += ts.Term
		}
		out += "\n"
	}
	return out
}
