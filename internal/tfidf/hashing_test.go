package tfidf

import (
	"math"
	"testing"

	"hetsyslog/internal/ml"
	"hetsyslog/internal/ml/bayes"
	"hetsyslog/internal/sparse"
)

func TestHashingDeterministicAndNormalized(t *testing.T) {
	hv := NewHashingVectorizer()
	doc := toks("cpu temperature above threshold throttled")
	a := hv.Transform(doc)
	b := hv.Transform(doc)
	if a.NNZ() != b.NNZ() {
		t.Fatal("hashing not deterministic")
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] || a.Val[i] != b.Val[i] {
			t.Fatal("hashing not deterministic")
		}
	}
	if math.Abs(a.Norm()-1) > 1e-12 {
		t.Errorf("norm = %v", a.Norm())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHashingNoFitNeeded(t *testing.T) {
	hv := NewHashingVectorizer()
	// Unseen tokens still map somewhere (unlike the vocabulary
	// vectorizer, which drops them).
	v := hv.Transform(toks("totally novel tokens never seen"))
	if v.NNZ() == 0 {
		t.Error("hashing vectorizer dropped unseen tokens")
	}
}

func TestHashingDimsBounded(t *testing.T) {
	hv := &HashingVectorizer{Dims: 64}
	v := hv.Transform(toks("a b c d e f g h i j k l m n o p q r s t u v w x y z"))
	for _, i := range v.Idx {
		if i < 0 || int(i) >= 64 {
			t.Fatalf("feature %d outside dims", i)
		}
	}
}

func TestHashingSignedCancellation(t *testing.T) {
	// With Signed, same-bucket collisions can cancel rather than inflate;
	// we only check that signed output is still valid and nonzero for
	// realistic text.
	hv := &HashingVectorizer{Dims: 1 << 16, Signed: true}
	v := hv.Transform(toks("error node has low real_memory size"))
	if v.NNZ() == 0 {
		t.Error("all features cancelled, which should be vanishingly unlikely")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestHashingClassificationParity: a classifier trained on hashed features
// should match the vocabulary pipeline closely on separable data (the
// ablation claim).
func TestHashingClassificationParity(t *testing.T) {
	docs := [][]string{}
	labels := []int{}
	for i := 0; i < 60; i++ {
		docs = append(docs, toks("cpu temperature threshold throttled sensor"))
		labels = append(labels, 0)
		docs = append(docs, toks("connection closed port preauth user"))
		labels = append(labels, 1)
		docs = append(docs, toks("usb device hub number new"))
		labels = append(labels, 2)
	}
	hv := NewHashingVectorizer()
	hv.Dims = 1 << 12
	X := hv.TransformAll(docs)
	ds := &ml.Dataset{X: X, Y: labels, Labels: []string{"t", "s", "u"}}
	m := &bayes.ComplementNB{}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for i, row := range X.Rows {
		if m.Predict(row) != labels[i] {
			t.Fatal("hashed features failed on separable data")
		}
	}
}

func TestHashingZeroValueDefaults(t *testing.T) {
	var hv HashingVectorizer // zero value: Dims defaults inside Transform
	v := hv.Transform(toks("hello world"))
	if v.NNZ() == 0 {
		t.Error("zero-value vectorizer unusable")
	}
	m := hv.TransformAll([][]string{toks("a"), toks("b")})
	if m.Cols != 1<<18 {
		t.Errorf("default dims = %d", m.Cols)
	}
}

var benchSink sparse.Vector

func BenchmarkVocabularyTransform(b *testing.B) {
	corpus := make([][]string, 500)
	for i := range corpus {
		corpus[i] = toks("error node has low real_memory size threshold cpu temperature sensor")
	}
	vz := &Vectorizer{Sublinear: true}
	vz.Fit(corpus)
	doc := corpus[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = vz.Transform(doc)
	}
}

// BenchmarkHashingTransform is the DESIGN.md ablation counterpart of
// BenchmarkVocabularyTransform: no vocabulary, hash-based features.
func BenchmarkHashingTransform(b *testing.B) {
	hv := NewHashingVectorizer()
	doc := toks("error node has low real_memory size threshold cpu temperature sensor")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = hv.Transform(doc)
	}
}
