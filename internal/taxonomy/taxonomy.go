// Package taxonomy defines the paper's eight-way classification scheme for
// heterogeneous syslog messages (§4.1): broad, actionable categories rather
// than over-specified diagnoses, plus the "Unimportant" bucket for noise
// the system administrators chose to ignore.
package taxonomy

// Category is one of the paper's issue classes.
type Category string

// The eight categories of §4.1, in the paper's order.
const (
	HardwareIssue      Category = "Hardware Issue"
	IntrusionDetection Category = "Intrusion Detection"
	MemoryIssue        Category = "Memory Issue"
	SSHConnection      Category = "SSH-Connection"
	SlurmIssue         Category = "Slurm Issues"
	ThermalIssue       Category = "Thermal Issue"
	USBDevice          Category = "USB-Device"
	Unimportant        Category = "Unimportant"
)

// All lists every category in a stable order.
func All() []Category {
	return []Category{
		HardwareIssue, IntrusionDetection, MemoryIssue, SSHConnection,
		SlurmIssue, ThermalIssue, USBDevice, Unimportant,
	}
}

// Names returns All() as plain strings (label sets for the classifiers).
func Names() []string {
	cats := All()
	out := make([]string, len(cats))
	for i, c := range cats {
		out[i] = string(c)
	}
	return out
}

// Valid reports whether c is one of the defined categories.
func Valid(c Category) bool {
	for _, k := range All() {
		if c == k {
			return true
		}
	}
	return false
}

// Actionable reports whether the category should page an administrator.
// Everything except Unimportant is actionable (§4.1: categories are chosen
// "at a level that prompts actionable steps").
func Actionable(c Category) bool { return Valid(c) && c != Unimportant }

// PaperCounts returns Table 2: unique messages per category in the paper's
// Levenshtein-labelled dataset (196 393 total).
func PaperCounts() map[Category]int {
	return map[Category]int{
		HardwareIssue:      3582,
		IntrusionDetection: 6599,
		MemoryIssue:        12449,
		SSHConnection:      3615,
		ThermalIssue:       59411,
		SlurmIssue:         46,
		USBDevice:          4139,
		Unimportant:        106552,
	}
}

// PaperTotal is the size of the paper's dataset (sum of Table 2).
func PaperTotal() int {
	n := 0
	for _, v := range PaperCounts() {
		n += v
	}
	return n
}
