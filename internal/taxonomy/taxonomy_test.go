package taxonomy

import "testing"

func TestAllHasEightCategories(t *testing.T) {
	if len(All()) != 8 {
		t.Fatalf("categories = %d, want 8", len(All()))
	}
	seen := map[Category]bool{}
	for _, c := range All() {
		if seen[c] {
			t.Errorf("duplicate category %q", c)
		}
		seen[c] = true
		if !Valid(c) {
			t.Errorf("category %q not Valid", c)
		}
	}
}

func TestValidRejectsUnknown(t *testing.T) {
	if Valid("Disk Issue") {
		t.Error("unknown category accepted")
	}
	if Valid("") {
		t.Error("empty category accepted")
	}
}

func TestActionable(t *testing.T) {
	if Actionable(Unimportant) {
		t.Error("Unimportant must not be actionable")
	}
	if !Actionable(ThermalIssue) || !Actionable(SlurmIssue) {
		t.Error("issue categories must be actionable")
	}
	if Actionable("bogus") {
		t.Error("invalid category must not be actionable")
	}
}

func TestPaperCountsMatchTable2(t *testing.T) {
	counts := PaperCounts()
	if counts[ThermalIssue] != 59411 {
		t.Errorf("Thermal = %d", counts[ThermalIssue])
	}
	if counts[Unimportant] != 106552 {
		t.Errorf("Unimportant = %d", counts[Unimportant])
	}
	if counts[SlurmIssue] != 46 {
		t.Errorf("Slurm = %d", counts[SlurmIssue])
	}
	if got := PaperTotal(); got != 196393 {
		t.Errorf("total = %d, want 196393 (sum of Table 2)", got)
	}
	if len(counts) != len(All()) {
		t.Error("PaperCounts must cover every category")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 8 || names[0] != "Hardware Issue" {
		t.Errorf("Names() = %v", names)
	}
}
