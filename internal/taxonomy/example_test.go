package taxonomy_test

import (
	"fmt"

	"hetsyslog/internal/taxonomy"
)

func ExampleActionable() {
	fmt.Println(taxonomy.Actionable(taxonomy.ThermalIssue))
	fmt.Println(taxonomy.Actionable(taxonomy.Unimportant))
	// Output:
	// true
	// false
}

func ExamplePaperCounts() {
	counts := taxonomy.PaperCounts()
	fmt.Println(counts[taxonomy.ThermalIssue], counts[taxonomy.SlurmIssue])
	fmt.Println(taxonomy.PaperTotal())
	// Output:
	// 59411 46
	// 196393
}
