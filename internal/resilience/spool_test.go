package resilience

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestSpool(t *testing.T, dir string, maxBytes, segBytes int64) *Spool {
	t.Helper()
	s, err := OpenSpool(SpoolConfig{Dir: dir, MaxBytes: maxBytes, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSpoolAppendPeekPopRoundtrip(t *testing.T) {
	s := openTestSpool(t, t.TempDir(), 0, 0)
	payloads := [][]byte{[]byte("batch-one"), []byte("batch-two"), []byte("batch-three")}
	for i, p := range payloads {
		if ev, err := s.Append(p, i+1); err != nil || ev != 0 {
			t.Fatalf("append %d: evicted=%d err=%v", i, ev, err)
		}
	}
	if got := s.Records(); got != 6 {
		t.Fatalf("Records = %d, want 6", got)
	}
	for i, want := range payloads {
		p, n, tok, ok, err := s.Peek()
		if err != nil || !ok {
			t.Fatalf("peek %d: ok=%v err=%v", i, ok, err)
		}
		if string(p) != string(want) || n != i+1 {
			t.Fatalf("frame %d = %q/%d, want %q/%d", i, p, n, want, i+1)
		}
		if !s.Pop(tok) {
			t.Fatalf("pop %d: head token must still match", i)
		}
	}
	if _, _, _, ok, _ := s.Peek(); ok {
		t.Fatal("spool should be empty")
	}
	if got := s.Records(); got != 0 {
		t.Errorf("Records after drain = %d", got)
	}
}

func TestSpoolSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, 0, 0)
	if _, err := s.Append([]byte("persist-me"), 7); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openTestSpool(t, dir, 0, 0)
	if got := s2.Records(); got != 7 {
		t.Fatalf("recovered Records = %d, want 7", got)
	}
	p, n, _, ok, err := s2.Peek()
	if err != nil || !ok || string(p) != "persist-me" || n != 7 {
		t.Fatalf("recovered frame = %q/%d ok=%v err=%v", p, n, ok, err)
	}
}

// TestSpoolCrashRecoveryTruncatedFrame simulates a crash mid-append: the
// final frame's bytes are cut short, so its length prefix promises more
// than the file holds. On reopen the torn frame must be skipped and every
// earlier frame must replay intact.
func TestSpoolCrashRecoveryTruncatedFrame(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, 0, 0)
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("intact-frame-%d", i)), 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Append([]byte("doomed-final-frame"), 5); err != nil {
		t.Fatal(err)
	}
	s.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, err = %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the final frame's payload (kill -9 mid-write).
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2 := openTestSpool(t, dir, 0, 0)
	if got := s2.Records(); got != 6 {
		t.Fatalf("recovered Records = %d, want 6 (3 intact frames)", got)
	}
	if got := s2.Skipped(); got != 5 {
		t.Errorf("Skipped = %d, want 5 (the torn frame's count)", got)
	}
	for i := 0; i < 3; i++ {
		p, n, tok, ok, err := s2.Peek()
		if err != nil || !ok || n != 2 || string(p) != fmt.Sprintf("intact-frame-%d", i) {
			t.Fatalf("frame %d after recovery = %q/%d ok=%v err=%v", i, p, n, ok, err)
		}
		s2.Pop(tok)
	}
	if _, _, _, ok, _ := s2.Peek(); ok {
		t.Fatal("torn frame must not be replayable")
	}
}

// TestSpoolCrashRecoveryCorruptCRC flips a payload byte of the middle
// frame: that frame and everything after it in the segment are skipped
// (the stream cannot resynchronize), earlier frames replay.
func TestSpoolCrashRecoveryCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, 0, 0)
	offsets := make([]int64, 0, 3)
	for i := 0; i < 3; i++ {
		offsets = append(offsets, s.Bytes())
		if _, err := s.Append([]byte(fmt.Sprintf("frame-%d-payload", i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside frame 1's payload.
	if _, err := f.WriteAt([]byte{0xFF}, offsets[1]+frameHeader+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTestSpool(t, dir, 0, 0)
	if got := s2.Records(); got != 1 {
		t.Fatalf("recovered Records = %d, want 1 (only the frame before the corruption)", got)
	}
	p, _, _, ok, err := s2.Peek()
	if err != nil || !ok || string(p) != "frame-0-payload" {
		t.Fatalf("surviving frame = %q ok=%v err=%v", p, ok, err)
	}
}

func TestSpoolEvictsOldestSegmentWhenFull(t *testing.T) {
	// Tiny segments so every frame rotates; bound of ~3 frames.
	payload := make([]byte, 100)
	s := openTestSpool(t, t.TempDir(), 3*(frameHeader+100), frameHeader+100)
	var evicted int64
	for i := 0; i < 10; i++ {
		ev, err := s.Append(payload, 1)
		if err != nil {
			t.Fatal(err)
		}
		evicted += ev
	}
	if evicted == 0 {
		t.Fatal("bound exceeded: eviction must fire")
	}
	if s.Records()+evicted != 10 {
		t.Errorf("records %d + evicted %d != 10 appended", s.Records(), evicted)
	}
	if s.Evicted() != evicted {
		t.Errorf("Evicted() = %d, want %d", s.Evicted(), evicted)
	}
	if s.Bytes() > 3*(frameHeader+100) {
		t.Errorf("Bytes = %d exceeds the bound", s.Bytes())
	}
	// Oldest evicted first: the head of the queue is not frame 0.
	// (Frames hold identical payloads; ordering is observable through
	// how many survive — the newest must be among them.)
	if s.Segments() == 0 {
		t.Error("the newest segment must survive eviction")
	}
}

func TestSpoolRotatesSegments(t *testing.T) {
	s := openTestSpool(t, t.TempDir(), 0, 64)
	for i := 0; i < 5; i++ {
		if _, err := s.Append(make([]byte, 60), 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Segments(); got < 2 {
		t.Fatalf("Segments = %d, want rotation to have split the log", got)
	}
}

func TestSpoolRequiresDir(t *testing.T) {
	if _, err := OpenSpool(SpoolConfig{}); err == nil {
		t.Fatal("empty dir must error")
	}
}

// TestSpoolPopRefusesEvictedFrame pins the replay/eviction race: a frame
// peeked for replay is evicted (bounded spool, concurrent Append) before
// Pop. Pop must report the mismatch instead of silently consuming the
// new head frame, which would lose it without delivery or accounting.
func TestSpoolPopRefusesEvictedFrame(t *testing.T) {
	frame := int64(frameHeader + 100)
	s := openTestSpool(t, t.TempDir(), 3*frame, frame) // one frame per segment
	pay := func(b byte) []byte {
		p := make([]byte, 100)
		p[0] = b
		return p
	}
	for _, b := range []byte{'a', 'b', 'c'} {
		if _, err := s.Append(pay(b), 1); err != nil {
			t.Fatal(err)
		}
	}
	p, _, tok, ok, err := s.Peek()
	if err != nil || !ok || p[0] != 'a' {
		t.Fatalf("peek head = %q ok=%v err=%v", p[:1], ok, err)
	}
	// The fourth frame overflows the bound and evicts the peeked head.
	ev, err := s.Append(pay('d'), 1)
	if err != nil || ev != 1 {
		t.Fatalf("evicting append: evicted=%d err=%v", ev, err)
	}
	if s.Pop(tok) {
		t.Fatal("Pop must refuse a token for an evicted frame")
	}
	if got := s.Records(); got != 3 {
		t.Errorf("Records after refused pop = %d, want 3", got)
	}
	p, _, tok, ok, err = s.Peek()
	if err != nil || !ok || p[0] != 'b' {
		t.Fatalf("post-eviction head = %q ok=%v err=%v", p[:1], ok, err)
	}
	if !s.Pop(tok) {
		t.Error("Pop with a fresh token must consume the head")
	}
}

// TestSpoolRejectsOversizedFrame: a frame that cannot fit under MaxBytes
// even alone is refused up front — nothing is evicted and the bound holds.
func TestSpoolRejectsOversizedFrame(t *testing.T) {
	frame := int64(frameHeader + 100)
	s := openTestSpool(t, t.TempDir(), 3*frame, frame)
	if _, err := s.Append(make([]byte, 100), 4); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Append(make([]byte, 400), 9)
	if err != ErrFrameTooLarge {
		t.Fatalf("oversized append err = %v, want ErrFrameTooLarge", err)
	}
	if ev != 0 {
		t.Errorf("oversized append evicted %d records; must evict nothing", ev)
	}
	if got := s.Records(); got != 4 {
		t.Errorf("Records after rejection = %d, want 4 (spool untouched)", got)
	}
	if got := s.Bytes(); got != frame {
		t.Errorf("Bytes after rejection = %d, want %d", got, frame)
	}
}

// TestSpoolScanTruncatesTornTail: reopening a spool with a torn final
// frame must truncate the file to its valid prefix, so on-disk size
// matches Bytes() and eviction frees exactly what the accounting claims.
func TestSpoolScanTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTestSpool(t, dir, 0, 0)
	for i := 0; i < 2; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("frame-%d-payload", i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want one", segs)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := openTestSpool(t, dir, 0, 0)
	if got := s2.Records(); got != 1 {
		t.Fatalf("recovered Records = %d, want 1", got)
	}
	fi, err = os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != s2.Bytes() {
		t.Errorf("on-disk size %d != Bytes() %d after scan truncation", fi.Size(), s2.Bytes())
	}
}
