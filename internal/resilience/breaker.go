// Package resilience provides the fault-tolerant delivery building
// blocks the collector pipeline composes around its sink: a circuit
// breaker with jittered exponential backoff, a disk-backed spill queue
// (an append-only WAL the pipeline writes batches into when the sink is
// unavailable, replayed in order once it recovers), and a deterministic
// fault-injection sink wrapper for testing all of it.
//
// The package mirrors the durability properties the paper's collection
// substrate gets from Fluentd's file buffer (§4.2): a slow or down
// OpenSearch must never translate into lost log lines, because lost log
// lines are lost evidence. Everything here is dependency-free and
// payload-agnostic: the breaker counts failures, the spool stores opaque
// byte frames, and the chaos sink wraps any batch-shaped write function.
package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// State is a circuit breaker state.
type State int32

const (
	// Closed: writes flow normally; failures are counted.
	Closed State = iota
	// HalfOpen: the backoff deadline passed; exactly one probe write is
	// allowed through to test the sink.
	HalfOpen
	// Open: the failure threshold tripped; writes are refused until the
	// backoff deadline.
	Open
)

// String returns the conventional lowercase state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker. The zero value is usable: every
// field has a default applied by NewBreaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// open (default 5).
	FailureThreshold int
	// InitialBackoff is the first open-state duration and the base of the
	// retry ladder (default 10ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential ladder (default 30s).
	MaxBackoff time.Duration
	// Jitter is the fraction of random spread added on top of each
	// backoff: the delay for step k is uniform in
	// [base_k, base_k*(1+Jitter)] where base_k = min(Initial<<k, Max).
	// Default 0.5; set negative for none (0 means the default, so tests
	// that need determinism must pass -1... use NoJitter).
	Jitter float64
	// Seed seeds the jitter source, so two breakers (e.g. two collector
	// processes restarted against the same struggling sink) desynchronize
	// deterministically (default 1).
	Seed int64
	// Now overrides the clock for tests.
	Now func() time.Time
}

// NoJitter disables jitter spread when assigned to BreakerConfig.Jitter.
const NoJitter = -1.0

// Breaker is a circuit breaker: it sits in front of an unreliable sink,
// counts consecutive failures, and once a threshold trips it refuses
// writes for an exponentially growing, jittered, capped backoff window.
// After the window one probe is let through (half-open); success closes
// the breaker, failure re-opens it with a longer window.
//
// All methods are safe for concurrent use. The breaker does not perform
// writes itself: callers bracket each attempt with Allow / Success /
// Failure.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	rng       *rand.Rand
	state     State
	failures  int       // consecutive failures
	step      int       // backoff ladder position
	openUntil time.Time // when Open may transition to HalfOpen
	probing   bool      // a HalfOpen probe is in flight
	trips     int64     // cumulative Closed->Open transitions
}

// NewBreaker returns a Breaker with defaults applied to cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.InitialBackoff <= 0 {
		cfg.InitialBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.5
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Allow reports whether a write attempt may proceed now. In Closed state
// it always may; in Open state it may not until the backoff deadline, at
// which point the breaker turns HalfOpen and grants exactly one caller a
// probe (concurrent callers keep being refused until the probe resolves
// via Success or Failure).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Before(b.openUntil) {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful write: the breaker closes and the backoff
// ladder resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = Closed
	b.failures = 0
	b.step = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed write. In HalfOpen it re-opens immediately
// with the next (longer) backoff; in Closed it trips to Open once
// FailureThreshold consecutive failures accumulate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.openLocked()
	case Closed:
		if b.failures >= b.cfg.FailureThreshold {
			b.trips++
			b.openLocked()
		}
	case Open:
		// Late failure from a write that started before the trip: the
		// breaker is already open; just keep counting.
	}
}

// openLocked moves to Open with the current ladder step's jittered
// delay, then advances the ladder. Caller holds b.mu.
func (b *Breaker) openLocked() {
	b.state = Open
	b.openUntil = b.cfg.Now().Add(b.delayLocked(b.step))
	if b.step < 62 { // avoid shifting into overflow; MaxBackoff caps anyway
		b.step++
	}
}

// delayLocked computes the jittered, capped exponential delay for ladder
// step k. Caller holds b.mu (the rng is not concurrency-safe).
func (b *Breaker) delayLocked(k int) time.Duration {
	base := b.cfg.InitialBackoff << uint(k)
	if base <= 0 || base > b.cfg.MaxBackoff { // <<= can overflow negative
		base = b.cfg.MaxBackoff
	}
	if b.cfg.Jitter <= 0 {
		return base
	}
	spread := time.Duration(b.cfg.Jitter * float64(base) * b.rng.Float64())
	d := base + spread
	if d > b.cfg.MaxBackoff {
		d = b.cfg.MaxBackoff
	}
	return d
}

// RetryDelay returns the jittered, capped backoff for retry attempt k of
// a single batch (k starting at 0). It shares the breaker's ladder shape
// and jitter source, so per-batch retry sleeps and open-state windows
// follow the same schedule — this is the replacement for the pipeline's
// former naked doubling.
func (b *Breaker) RetryDelay(k int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delayLocked(k)
}

// State returns the current state, resolving an expired Open window to
// HalfOpen-eligible Open (the transition itself happens in Allow).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped Closed -> Open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// NextProbe returns when an Open breaker will next grant a probe (zero
// time when the breaker is not Open). Pollers use it to schedule their
// next replay attempt instead of spinning.
func (b *Breaker) NextProbe() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return time.Time{}
	}
	return b.openUntil
}
