package resilience

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Spool is a disk-backed spill queue: an append-only write-ahead log of
// opaque payload frames, stored as numbered segment files under one
// directory. The collector pipeline appends a frame per undeliverable
// batch and replays frames oldest-first once the sink recovers, so a
// sink outage turns into spooled bytes instead of dropped records —
// the role Fluentd's file buffer plays in the paper's substrate (§4.2).
//
// On-disk format, per frame:
//
//	uint32 payload length (little-endian)
//	uint32 record count   (how many records the payload encodes)
//	uint32 CRC-32 (IEEE) of the count field and the payload
//	payload bytes
//
// Each Append is fsync'd before returning, so an acknowledged spill
// survives a crash. A frame whose length prefix runs past the end of the
// segment (torn final write) or whose CRC mismatches is detected on open
// and skipped along with the rest of its segment; frames before it replay
// intact, and the file is truncated to its valid prefix so on-disk size
// always matches the Bytes() accounting.
//
// Capacity is bounded by MaxBytes with oldest-segment eviction: when an
// append would exceed the bound, whole leading segments are deleted and
// their record counts reported back to the caller (the pipeline accounts
// them as Dropped — the spool prefers losing the oldest evidence to
// refusing the newest). MaxBytes is a hard bound: a single frame that
// would not fit in an otherwise empty spool is rejected with
// ErrFrameTooLarge instead of overshooting.
//
// Replay position is tracked per-process: a fully replayed segment is
// deleted, a partially replayed one is re-replayed from its start after
// a crash (at-least-once delivery across restarts; exactly-once within
// one process).
//
// All methods are safe for concurrent use.
type Spool struct {
	dir      string
	maxBytes int64
	segBytes int64

	mu       sync.Mutex
	segments []*segment // oldest first; last is the active append target
	active   *os.File   // open handle for the last segment
	nextSeq  uint64
	bytes    int64 // total valid bytes across segments
	records  int64 // total spooled, not-yet-replayed records
	evicted  int64 // cumulative records lost to eviction
	skipped  int64 // cumulative records lost to torn/corrupt frames
	headFrm  int   // index of the next frame to replay in segments[0]
}

type segment struct {
	path   string
	seq    uint64
	bytes  int64 // valid (frame-covered) bytes
	frames []frameInfo
}

type frameInfo struct {
	off     int64
	length  uint32
	records uint32
}

const frameHeader = 12 // len + count + crc

// SpoolConfig parameterizes OpenSpool.
type SpoolConfig struct {
	// Dir is the spool directory, created if missing.
	Dir string
	// MaxBytes bounds total spool size; exceeding it evicts the oldest
	// segment(s). 0 means unbounded.
	MaxBytes int64
	// SegmentBytes rotates the active segment once it grows past this
	// size (default 4MiB, or MaxBytes/8 when that is smaller), so
	// eviction granularity stays a fraction of the bound.
	SegmentBytes int64
}

// OpenSpool opens (or creates) the spool at cfg.Dir, scanning existing
// segments so records spooled by a previous process are ready to replay.
func OpenSpool(cfg SpoolConfig) (*Spool, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("resilience: spool needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	seg := cfg.SegmentBytes
	if seg <= 0 {
		seg = 4 << 20
		if cfg.MaxBytes > 0 && cfg.MaxBytes/8 < seg {
			seg = cfg.MaxBytes / 8
		}
		if seg < 4<<10 {
			seg = 4 << 10
		}
	}
	s := &Spool{dir: cfg.Dir, maxBytes: cfg.MaxBytes, segBytes: seg, nextSeq: 1}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan indexes existing segment files, validating every frame and
// truncating torn tails.
func (s *Spool) scan() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.wal"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, path := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(path), "seg-%016d.wal", &seq); err != nil {
			continue // not ours
		}
		seg, skippedRecs, fileSize, err := indexSegment(path, seq)
		if err != nil {
			return err
		}
		s.skipped += skippedRecs
		if len(seg.frames) == 0 {
			os.Remove(path) // nothing replayable in it
			continue
		}
		if seg.bytes < fileSize {
			// Drop the torn/corrupt tail from disk too, so file sizes
			// match the Bytes()/MaxBytes accounting and eviction frees
			// exactly what it claims to.
			if err := os.Truncate(path, seg.bytes); err != nil {
				return err
			}
		}
		s.segments = append(s.segments, seg)
		s.bytes += seg.bytes
		for _, f := range seg.frames {
			s.records += int64(f.records)
		}
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	return nil
}

// indexSegment reads one segment file, returning the index of its valid
// frames, how many records sit in torn/corrupt frames past the valid
// prefix (best effort: a torn length field counts as 0 records), and the
// file's on-disk size so the caller can truncate the damaged tail.
func indexSegment(path string, seq uint64) (*segment, int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, 0, err
	}
	seg := &segment{path: path, seq: seq}
	var off int64
	var hdr [frameHeader]byte
	var skipped int64
	for off+frameHeader <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		count := binary.LittleEndian.Uint32(hdr[4:8])
		sum := binary.LittleEndian.Uint32(hdr[8:12])
		if off+frameHeader+int64(length) > size {
			// Torn final frame: the length prefix promises more bytes
			// than the file holds (crash mid-append).
			skipped += int64(count)
			break
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+frameHeader); err != nil {
			skipped += int64(count)
			break
		}
		if frameCRC(hdr[4:8], payload) != sum {
			// Corrupt frame: skip it and everything after it in this
			// segment (the stream is not self-resynchronizing).
			skipped += int64(count)
			break
		}
		seg.frames = append(seg.frames, frameInfo{off: off, length: length, records: count})
		off += frameHeader + int64(length)
	}
	seg.bytes = off
	return seg, skipped, size, nil
}

// frameCRC covers the record-count field and the payload.
func frameCRC(countField, payload []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(countField)
	h.Write(payload)
	return h.Sum32()
}

// ErrFrameTooLarge reports an Append whose frame alone would exceed the
// spool's MaxBytes bound even with every older segment evicted. The
// caller should account the batch as dropped rather than blow the bound.
var ErrFrameTooLarge = errors.New("resilience: frame exceeds spool MaxBytes")

// Append spills one encoded batch of records records. It returns how many
// previously spooled records were evicted to stay under MaxBytes (0 when
// nothing was evicted). The frame is fsync'd before Append returns. A
// frame larger than MaxBytes on its own is rejected with ErrFrameTooLarge
// before anything is evicted.
func (s *Spool) Append(payload []byte, records int) (evicted int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	need := int64(frameHeader + len(payload))
	if s.maxBytes > 0 && need > s.maxBytes {
		return 0, ErrFrameTooLarge
	}
	if s.maxBytes > 0 {
		for s.bytes+need > s.maxBytes && len(s.segments) > 1 {
			evicted += s.evictOldestLocked()
		}
		// Still over with one segment left: rotate so the old one
		// becomes evictable, unless it's already empty of frames.
		if s.bytes+need > s.maxBytes && len(s.segments) == 1 && len(s.segments[0].frames) > 0 {
			if err := s.rotateLocked(); err != nil {
				return evicted, err
			}
			evicted += s.evictOldestLocked()
		}
	}
	if err := s.ensureActiveLocked(need); err != nil {
		return evicted, err
	}
	seg := s.segments[len(s.segments)-1]
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(records))
	binary.LittleEndian.PutUint32(hdr[8:12], frameCRC(hdr[4:8], payload))
	if _, err := s.active.Write(hdr[:]); err != nil {
		return evicted, err
	}
	if _, err := s.active.Write(payload); err != nil {
		return evicted, err
	}
	if err := s.active.Sync(); err != nil {
		return evicted, err
	}
	seg.frames = append(seg.frames, frameInfo{off: seg.bytes, length: uint32(len(payload)), records: uint32(records)})
	seg.bytes += need
	s.bytes += need
	s.records += int64(records)
	return evicted, nil
}

// ensureActiveLocked opens or rotates the active segment so the next
// frame of the given size lands in a segment under SegmentBytes.
func (s *Spool) ensureActiveLocked(need int64) error {
	if len(s.segments) > 0 && s.active != nil {
		seg := s.segments[len(s.segments)-1]
		if seg.bytes+need <= s.segBytes || len(seg.frames) == 0 {
			return nil
		}
	}
	return s.rotateLocked()
}

// rotateLocked starts a new active segment.
func (s *Spool) rotateLocked() error {
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%016d.wal", s.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.segments = append(s.segments, &segment{path: path, seq: s.nextSeq})
	s.nextSeq++
	s.active = f
	return nil
}

// evictOldestLocked deletes the oldest segment, returning how many
// not-yet-replayed records it held. Caller holds s.mu and has ensured
// the oldest segment is not the active one (or accepts losing it).
func (s *Spool) evictOldestLocked() int64 {
	seg := s.segments[0]
	var recs int64
	for _, f := range seg.frames[s.headFrameIndexLocked(seg):] {
		recs += int64(f.records)
	}
	if s.active != nil && len(s.segments) == 1 {
		s.active.Close()
		s.active = nil
	}
	os.Remove(seg.path)
	s.segments = s.segments[1:]
	s.bytes -= seg.bytes
	s.records -= recs
	s.evicted += recs
	s.headFrm = 0
	return recs
}

// headFrameIndexLocked returns the replay cursor within seg if seg is the
// head segment, else 0.
func (s *Spool) headFrameIndexLocked(seg *segment) int {
	if len(s.segments) > 0 && s.segments[0] == seg {
		return s.headFrm
	}
	return 0
}

// FrameToken identifies the exact frame a Peek returned: the segment's
// sequence number (never reused) plus the frame index within it. Pop
// takes it back so a frame evicted between Peek and Pop — eviction can
// run concurrently with a replay's in-flight sink write — is never
// confused with whatever frame sits at the head afterwards.
type FrameToken struct {
	seq uint64
	frm int
}

// Peek returns the oldest unreplayed frame's payload, record count, and a
// token identifying that frame for Pop. ok is false when the spool is
// empty.
func (s *Spool) Peek() (payload []byte, records int, tok FrameToken, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.segments) > 0 {
		seg := s.segments[0]
		if s.headFrm < len(seg.frames) {
			fr := seg.frames[s.headFrm]
			f, err := os.Open(seg.path)
			if err != nil {
				return nil, 0, FrameToken{}, false, err
			}
			payload = make([]byte, fr.length)
			_, err = f.ReadAt(payload, fr.off+frameHeader)
			f.Close()
			if err != nil {
				return nil, 0, FrameToken{}, false, err
			}
			return payload, int(fr.records), FrameToken{seq: seg.seq, frm: s.headFrm}, true, nil
		}
		s.dropHeadSegmentLocked()
	}
	return nil, 0, FrameToken{}, false, nil
}

// Pop consumes the frame tok identifies (after a successful replay). It
// reports whether the frame was still the head and got consumed: false
// means eviction removed it in the meantime — the caller has already been
// billed for it through Append's evicted count and must not account the
// pop again.
func (s *Spool) Pop(tok FrameToken) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segments) == 0 {
		return false
	}
	seg := s.segments[0]
	if seg.seq != tok.seq || s.headFrm != tok.frm || s.headFrm >= len(seg.frames) {
		return false
	}
	s.records -= int64(seg.frames[s.headFrm].records)
	s.headFrm++
	if s.headFrm >= len(seg.frames) {
		s.dropHeadSegmentLocked()
	}
	return true
}

// dropHeadSegmentLocked removes a fully replayed head segment.
func (s *Spool) dropHeadSegmentLocked() {
	seg := s.segments[0]
	if s.active != nil && len(s.segments) == 1 {
		s.active.Close()
		s.active = nil
	}
	os.Remove(seg.path)
	s.bytes -= seg.bytes
	s.segments = s.segments[1:]
	s.headFrm = 0
}

// Records returns how many spooled records await replay.
func (s *Spool) Records() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Bytes returns the total on-disk bytes of valid frames.
func (s *Spool) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Segments returns the live segment count.
func (s *Spool) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segments)
}

// Evicted returns the cumulative records lost to oldest-segment eviction.
func (s *Spool) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Skipped returns the cumulative records detected as torn/corrupt at open
// time and skipped.
func (s *Spool) Skipped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Close releases the active segment handle. Spooled data stays on disk
// for the next OpenSpool.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != nil {
		err := s.active.Close()
		s.active = nil
		return err
	}
	return nil
}
