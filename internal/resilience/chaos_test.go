package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// collectInner records delivered batches.
type collectInner struct {
	mu      sync.Mutex
	batches [][]int
}

func (c *collectInner) write(_ context.Context, batch []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := append([]int(nil), batch...)
	c.batches = append(c.batches, cp)
	return nil
}

func TestChaosSinkDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []bool {
		cs := NewChaosSink((&collectInner{}).write, ChaosPlan{Seed: seed, ErrorRate: 0.5})
		var fails []bool
		for i := 0; i < 50; i++ {
			fails = append(fails, cs.Write(context.Background(), []int{i}) != nil)
		}
		return fails
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical 50-call fault sequence")
	}
}

func TestChaosSinkOutageWindow(t *testing.T) {
	clk := &fakeClock{t: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)}
	inner := &collectInner{}
	cs := NewChaosSink(inner.write, ChaosPlan{
		OutageAfter: 100 * time.Millisecond,
		OutageFor:   time.Second,
		Now:         clk.now,
	})
	ctx := context.Background()
	if err := cs.Write(ctx, []int{1}); err != nil {
		t.Fatalf("before the outage: %v", err)
	}
	clk.advance(150 * time.Millisecond)
	if err := cs.Write(ctx, []int{2}); !errors.Is(err, ErrChaos) {
		t.Fatalf("inside the outage, want ErrChaos, got %v", err)
	}
	clk.advance(time.Second)
	if err := cs.Write(ctx, []int{3}); err != nil {
		t.Fatalf("after the outage: %v", err)
	}
	// The outage write must never have reached the inner sink.
	if len(inner.batches) != 2 {
		t.Fatalf("inner saw %d batches, want 2", len(inner.batches))
	}
	if calls, faults := cs.Stats(); calls != 3 || faults != 1 {
		t.Errorf("stats = %d calls / %d faults", calls, faults)
	}
}

func TestChaosSinkPartialDelivery(t *testing.T) {
	inner := &collectInner{}
	cs := NewChaosSink(inner.write, ChaosPlan{Seed: 7, ErrorRate: 1, PartialRate: 1})
	batch := []int{1, 2, 3, 4, 5, 6, 7, 8}
	err := cs.Write(context.Background(), batch)
	if !errors.Is(err, ErrChaos) {
		t.Fatalf("err = %v", err)
	}
	if len(inner.batches) != 1 {
		t.Fatalf("partial failure must deliver exactly one prefix, saw %d", len(inner.batches))
	}
	got := inner.batches[0]
	if len(got) == 0 || len(got) >= len(batch) {
		t.Fatalf("prefix length %d, want in (0, %d)", len(got), len(batch))
	}
	for i, v := range got {
		if v != batch[i] {
			t.Fatalf("delivered %v is not a prefix of %v", got, batch)
		}
	}
}

func TestChaosSinkLatencyRespectsContext(t *testing.T) {
	cs := NewChaosSink((&collectInner{}).write, ChaosPlan{MaxDelay: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := cs.Write(ctx, []int{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("ctx cancellation did not interrupt the injected latency")
	}
}
