package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrChaos is the default error injected by a ChaosSink.
var ErrChaos = errors.New("resilience: injected fault")

// ChaosPlan is a deterministic, seeded fault schedule for a ChaosSink.
// The zero value injects nothing. All probabilities are evaluated from
// one seeded source in call order, so a given (seed, call sequence)
// always produces the same fault sequence — tests are reproducible.
type ChaosPlan struct {
	// Seed seeds the fault source (default 1).
	Seed int64
	// ErrorRate is the probability a write fails (outside outage
	// windows, which always fail).
	ErrorRate float64
	// PartialRate is, given a failing write, the probability the sink
	// first delivers a prefix of the batch to the inner sink before
	// erroring — the nastiest real-world failure mode, which exercises
	// the caller's retry idempotency.
	PartialRate float64
	// MaxDelay adds uniform random latency in [0, MaxDelay) before each
	// write (a slow sink rather than a dead one). The sleep respects ctx.
	MaxDelay time.Duration
	// OutageAfter/OutageFor define one total outage window relative to
	// the first write: every write starting in
	// [first+OutageAfter, first+OutageAfter+OutageFor) fails without
	// reaching the inner sink. OutageFor == 0 disables the window.
	OutageAfter time.Duration
	OutageFor   time.Duration
	// Err overrides the injected error (default ErrChaos).
	Err error
	// Now overrides the clock for tests.
	Now func() time.Time
}

// ChaosSink wraps a batch write function with the deterministic fault
// schedule of a ChaosPlan: injected errors, added latency, total outage
// windows, and partial deliveries. E is the batch element type (the
// collector instantiates it with its Record), which keeps this package
// free of a dependency on any particular pipeline.
//
// Write is safe for concurrent use; concurrent callers draw faults from
// the shared seeded source in arrival order.
type ChaosSink[E any] struct {
	inner func(context.Context, []E) error
	plan  ChaosPlan

	mu     sync.Mutex
	rng    *rand.Rand
	first  time.Time
	calls  int64
	faults int64
}

// NewChaosSink wraps inner with plan.
func NewChaosSink[E any](inner func(context.Context, []E) error, plan ChaosPlan) *ChaosSink[E] {
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	if plan.Err == nil {
		plan.Err = ErrChaos
	}
	if plan.Now == nil {
		plan.Now = time.Now
	}
	return &ChaosSink[E]{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Write applies the schedule, then (unless a total fault fires) delegates
// to the inner sink.
func (c *ChaosSink[E]) Write(ctx context.Context, batch []E) error {
	now := c.plan.Now()
	c.mu.Lock()
	if c.first.IsZero() {
		c.first = now
	}
	c.calls++
	inOutage := c.plan.OutageFor > 0 &&
		!now.Before(c.first.Add(c.plan.OutageAfter)) &&
		now.Before(c.first.Add(c.plan.OutageAfter+c.plan.OutageFor))
	var delay time.Duration
	if c.plan.MaxDelay > 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.plan.MaxDelay)))
	}
	fail := inOutage || (c.plan.ErrorRate > 0 && c.rng.Float64() < c.plan.ErrorRate)
	partial := 0
	if fail && !inOutage && c.plan.PartialRate > 0 && c.rng.Float64() < c.plan.PartialRate && len(batch) > 1 {
		partial = 1 + c.rng.Intn(len(batch)-1)
	}
	if fail {
		c.faults++
	}
	c.mu.Unlock()

	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if fail {
		if partial > 0 {
			// Deliver a prefix, then fail the attempt: the caller will
			// redeliver the whole batch, so the inner sink sees the
			// prefix twice (at-least-once semantics under retry).
			if err := c.inner(ctx, batch[:partial]); err != nil {
				return err
			}
		}
		return c.plan.Err
	}
	return c.inner(ctx, batch)
}

// Stats reports how many writes the sink saw and how many it failed.
func (c *ChaosSink[E]) Stats() (calls, faults int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.faults
}
