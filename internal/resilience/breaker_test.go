package resilience

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, jitter float64) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		InitialBackoff:   10 * time.Millisecond,
		MaxBackoff:       time.Second,
		Jitter:           jitter,
		Now:              clk.now,
	})
	return b, clk
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, NoJitter)
	if b.State() != Closed {
		t.Fatal("new breaker should be closed")
	}
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatal("under threshold must stay closed")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("threshold reached: breaker must open")
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse before the deadline")
	}
	if b.Trips() != 1 {
		t.Errorf("trips = %d", b.Trips())
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	b, clk := newTestBreaker(1, NoJitter)
	b.Failure() // trips immediately: 10ms window
	if b.Allow() {
		t.Fatal("must refuse inside the window")
	}
	clk.advance(11 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("past the deadline one probe must pass")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("only one probe may be in flight")
	}
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("probe success must close the breaker")
	}
}

func TestBreakerProbeFailureDoublesBackoff(t *testing.T) {
	b, clk := newTestBreaker(1, NoJitter)
	b.Failure() // open, step 0: 10ms
	clk.advance(11 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe expected")
	}
	b.Failure() // re-open, step 1: 20ms
	clk.advance(11 * time.Millisecond)
	if b.Allow() {
		t.Fatal("doubled window: 11ms must still refuse")
	}
	clk.advance(10 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("past the doubled window a probe must pass")
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	b, _ := newTestBreaker(1, 0.5)
	for k := 0; k < 40; k++ {
		if d := b.RetryDelay(k); d > time.Second {
			t.Fatalf("RetryDelay(%d) = %v exceeds the 1s cap", k, d)
		}
	}
	if d := b.RetryDelay(30); d != time.Second {
		t.Errorf("deep ladder steps should sit at the cap, got %v", d)
	}
}

// TestBreakerRetryJitterDesynchronized is the regression test for the
// former naked-doubling backoff: two breakers with the same config but
// different seeds (two flush workers, or two collector processes,
// hammering the same recovering sink) must NOT produce identical retry
// schedules, and each schedule must stay within [base, base*(1+jitter)]
// capped — lockstep retries are what the jitter exists to break.
func TestBreakerRetryJitterDesynchronized(t *testing.T) {
	mk := func(seed int64) *Breaker {
		return NewBreaker(BreakerConfig{
			FailureThreshold: 1,
			InitialBackoff:   10 * time.Millisecond,
			MaxBackoff:       10 * time.Second,
			Jitter:           0.5,
			Seed:             seed,
		})
	}
	a, b := mk(1), mk(2)
	identical := true
	for k := 0; k < 8; k++ {
		da, db := a.RetryDelay(k), b.RetryDelay(k)
		base := 10 * time.Millisecond << uint(k)
		for _, d := range []time.Duration{da, db} {
			if d < base || d > base+base/2 {
				t.Fatalf("step %d: delay %v outside [%v, %v]", k, d, base, base+base/2)
			}
		}
		if da != db {
			identical = false
		}
	}
	if identical {
		t.Fatal("differently seeded breakers produced identical retry schedules (lockstep)")
	}
	// And one breaker's successive draws at the same step must vary too.
	seen := map[time.Duration]bool{}
	for i := 0; i < 16; i++ {
		seen[a.RetryDelay(3)] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a constant delay")
	}
}

func TestBreakerNextProbe(t *testing.T) {
	b, clk := newTestBreaker(1, NoJitter)
	if !b.NextProbe().IsZero() {
		t.Fatal("closed breaker has no probe deadline")
	}
	b.Failure()
	want := clk.t.Add(10 * time.Millisecond)
	if got := b.NextProbe(); !got.Equal(want) {
		t.Fatalf("NextProbe = %v, want %v", got, want)
	}
}
