package textproc

import (
	"strings"
	"unicode/utf8"
)

// Lemmatizer reduces inflected word forms to a base lemma, following the
// WordNet lemmatizer's architecture (paper §4.3.2, [5]): first consult an
// exception table for irregular forms, then apply suffix-detachment rules
// and accept a candidate only if it is a known base form in the lexicon.
// Unknown words are returned unchanged, which is the safe behaviour for
// vendor-specific identifiers like "slurm_rpc_node_registration".
type Lemmatizer struct {
	exceptions map[string]string
	lexicon    map[string]bool
}

// NewLemmatizer returns a lemmatizer loaded with the built-in exception
// table and base-form lexicon (tuned for the syslog/admin domain plus
// common English).
func NewLemmatizer() *Lemmatizer {
	return &Lemmatizer{exceptions: lemmaExceptions, lexicon: baseLexicon}
}

// Lemma returns the base form of the (lower-case) word.
func (l *Lemmatizer) Lemma(word string) string {
	if len(word) < 3 {
		return word
	}
	if base, ok := l.exceptions[word]; ok {
		return base
	}
	if l.lexicon[word] {
		return word // already a base form
	}
	for _, rule := range detachmentRules {
		if !strings.HasSuffix(word, rule.suffix) {
			continue
		}
		stem := word[:len(word)-len(rule.suffix)]
		if len(stem) < rule.minStem {
			continue
		}
		for _, repl := range rule.replacements {
			cand := stem + repl
			if l.lexicon[cand] {
				return cand
			}
		}
		// Consonant doubling: "throttling" -> "throttl" -> "throttle"
		// handled by the "" + "e" replacements above; "running" ->
		// "runn" -> undouble -> "run".
		if rule.undouble && len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] {
			cand := stem[:len(stem)-1]
			if l.lexicon[cand] {
				return cand
			}
		}
	}
	return word
}

// LemmatizeAll maps Lemma over tokens, returning a new slice.
func (l *Lemmatizer) LemmatizeAll(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = l.Lemma(t)
	}
	return out
}

// detachmentRule is one suffix rewrite attempt, mirroring WordNet's
// "rules of detachment".
type detachmentRule struct {
	suffix       string
	replacements []string
	minStem      int
	undouble     bool
}

var detachmentRules = []detachmentRule{
	// Order matters: longer, more specific suffixes first.
	{suffix: "nesses", replacements: []string{"ness", ""}, minStem: 3},
	{suffix: "ations", replacements: []string{"ate", "ation"}, minStem: 3},
	{suffix: "ation", replacements: []string{"ate", "", "e"}, minStem: 3},
	{suffix: "ures", replacements: []string{"ure", "e", ""}, minStem: 3},
	{suffix: "ure", replacements: []string{"e", ""}, minStem: 3}, // failure -> fail
	{suffix: "ings", replacements: []string{"", "e", "ing"}, minStem: 3, undouble: true},
	{suffix: "ing", replacements: []string{"", "e"}, minStem: 3, undouble: true},
	{suffix: "ied", replacements: []string{"y", "ie"}, minStem: 2},
	{suffix: "ies", replacements: []string{"y", "ie"}, minStem: 2},
	{suffix: "ed", replacements: []string{"", "e"}, minStem: 3, undouble: true},
	{suffix: "ers", replacements: []string{"er", "", "e"}, minStem: 3},
	{suffix: "er", replacements: []string{"", "e"}, minStem: 3, undouble: true},
	{suffix: "es", replacements: []string{"", "e"}, minStem: 3},
	{suffix: "s", replacements: []string{""}, minStem: 3},
	{suffix: "ly", replacements: []string{""}, minStem: 3},
	{suffix: "ment", replacements: []string{"", "e"}, minStem: 3},
}

// lemmaExceptions covers irregular forms relevant to log text.
var lemmaExceptions = map[string]string{
	"was": "be", "were": "be", "been": "be", "being": "be", "is": "be",
	"are": "be", "am": "be",
	"ran": "run", "running": "run",
	"began": "begin", "begun": "begin",
	"broke": "break", "broken": "break",
	"went": "go", "gone": "go", "going": "go",
	"wrote": "write", "written": "write",
	"sent": "send", "sending": "send",
	"lost": "lose", "found": "find",
	"shut": "shut", "shutdown": "shutdown",
	"hung": "hang", "hanged": "hang",
	"froze": "freeze", "frozen": "freeze",
	"rose": "rise", "risen": "rise",
	"fell": "fall", "fallen": "fall",
	"threw": "throw", "thrown": "throw",
	"took": "take", "taken": "take",
	"gave": "give", "given": "give",
	"got": "get", "gotten": "get",
	"left": "leave", "kept": "keep",
	"made": "make", "met": "meet",
	"read": "read", "said": "say",
	"saw": "see", "seen": "see",
	"children": "child", "men": "man", "women": "woman",
	"indices": "index", "vertices": "vertex", "matrices": "matrix",
	"statuses": "status", "buses": "bus",
	"errata": "erratum", "data": "data", "media": "media",
	"died": "die", "dying": "die", "dies": "die",
	"tries": "try", "tried": "try", "trying": "try",
	"retries": "retry", "retried": "retry", "retrying": "retry",
	"denied": "deny", "denies": "deny", "denying": "deny",
}

// baseLexicon is the set of known base forms. A detachment-rule candidate
// is only accepted when it appears here, exactly like WordNet validates
// candidates against its lexicon. The list is weighted toward syslog/HPC
// vocabulary (the domain of the paper) plus common English verbs and nouns.
var baseLexicon = buildLexicon(`
abort accept access acknowledge act activate adapt add address adjust
alarm alert alias align alloc allocate allow analyze answer appear append
apply approve argue arm arrive assert assign associate assume attach
attempt attend authenticate authorize avoid await awake
back balance ban bank bar base batch beat begin bind bite blame blank
bleed blink block board boot bound branch break bridge bring broadcast
buffer bug build burn bus button bypass byte
cache calculate calibrate call cancel cap capture card care carry cause
cease chain challenge change charge chase check checksum chip choose
claim class clean clear click client clock close cluster code collect
combine command commit communicate compare compile complete comply
compute conclude conduct configure confirm conflict congest connect
consider console consume contact contain continue control convert cool
copy core correct corrupt count cover crash create creep critical cross
crypt current cut cycle
daemon damage dash date deactivate deal debug decide declare decode
decrease dedicate defer define degrade delay delegate delete deliver
demand deny depend deploy describe design detach detect determine develop
device diagnose die differ direct disable discard disconnect discover
dispatch display dispose disrupt distribute divide document double doubt
download downgrade drain drift drive drop dump duplicate
echo edit eject elect elevate embed emit employ empty emulate enable
encode encounter encrypt end enforce engage enqueue ensure enter enumerate
equal erase err error escalate escape establish evaluate evict examine
exceed except exchange exclude execute exist exit expand expect expire
explain export expose express extend extract
face fail fall fan fault feed fetch file fill filter find finish fire fit
fix flag flash flip float flood flush fold follow force forget fork form
format forward frame free freeze front fuse
gain gate gather generate give go grant grab ground group grow guard guess
guide
halt handle hang happen harden hash head heal hear heat help hide hit hold
hook host hot
identify idle ignore image implement import improve include increase
indicate infer inform inherit initialize initiate inject input insert
inspect install instruct intercept interest interfere interrupt introduce
invalidate invoke isolate issue iterate
join judge jump
keep key kill know
label lack lag land last latch launch lead leak learn lease leave lend
level license lift light like limit line link list listen live load lock
log look loop lose
mail maintain make manage map mark mask match matter mean measure meet
merge message migrate mirror miss mix modify monitor mount move multiply
name need negotiate nest network nominate note notice notify null number
obey object observe obtain occur offer offline offload online open operate
order organize output overflow overheat overload override overrun own
pack page pair panic park parse partition pass patch pause peak peer pend
perform permit persist phase pick pin ping pipe place plan play plug point
poll pool pop port pose post power prefer prepare present preserve press
prevent print probe proceed process produce profile program progress
promote prompt propagate propose protect prove provide provision prune
publish pull pulse pump purge push put
query queue quit quota
race rack raise range rate reach react read reboot rebuild receive reclaim
recognize recommend reconnect record recover redirect reduce refer reflect
refresh refuse regard register regulate reject relate relay release reload
rely remain remap remember remind remote remove rename render renew repair
repeat replace replay replicate reply report represent request require
rescan reserve reset reside resize resolve respond restart restore
restrict result resume retain retire retrieve retry return reuse reverse
revert review revoke rewrite ring rise roll root rotate route run
sample sanitize save scale scan schedule scrub seal search seat secure see
seek seem segment select send sense separate sequence serve set settle
shape share shift ship show shrink shut shuffle sign signal simulate skip
sleep slice slide slow snap sniff socket solve sort sound source spawn
speak speed spend spike spill spin split spread stage stall stamp stand
start starve state stay steal steer step stick stop store stream stress
stretch strike strip struggle stuck submit subscribe succeed suffer suggest
suit supply support suppress suspect suspend swap switch sync synchronize
synthesize
tag tail take talk target teach tell terminate test thank thrash thread
throttle throw tick tie time toggle touch trace track train transfer
transform translate transmit trap travel treat trigger trim trip trust try
tune turn type
unblock unbind unload unlock unmount unplug unregister unseat update
upgrade upload use utilize
validate value vary vent verify view violate visit
wait wake walk want warm warn watch wear wedge wipe wish wonder work wrap
write
yield zero zone
act action adapter address agent alarm alert algorithm amount application
architecture area argument array assertion attachment attribute audit
authentication authority backup bandwidth baseboard battery bay bit blade
board boundary bridge bucket bundle cable capacity case cell chassis child
chip circuit class client clock cluster collection command component
condition conduit config configuration congestion connection connector
console content context controller cooler cooling core corruption count
counter credential current cursor daemon datum deadline decision
degradation delay demand density dependency depth descriptor destination
detail detection device dimension direction directory disk distance
document domain door drive driver duration edge effect effort element
email endpoint engine entry environment event evidence example exception
exchange expansion expiration explanation export extension fabric facility
factor fan fault feature fiber field firmware flag floor flow
folder form format frame frequency function fuse gap gate gateway group
guard handle hardware header health heat host hour hub humidity identity
image inlet input instance instruction interface interrupt interval
intrusion inventory isle issue job journal kernel key keyboard lane
language latency layer leak lease ledger length lesson level library
license lifetime limit line link list load location lock logic loop
machine mailbox manager margin mask master matrix measure media member
memory message method metric midplane minute mirror mode model module
moment monitor motherboard mount name network node noise notice number
object offset operation option order organization outlet output owner
package packet page pair panel parameter parent parity part partition
password patch path pattern peak peer percent performance period
peripheral permission person phase pin ping pipe plan plane platform plug
point policy pool port position power presence pressure priority privilege
probe problem procedure process processor profile program progress project
property protocol psu purpose quality quantity queue quorum rack radius
rail range rate reading reason receipt receiver record recovery reference
region registration regulator relation release reply report repository
request requirement reservation reset resource response result retention
review revision right ring riser role room root route router rule runtime
safety sample schedule schema scope score screen script searcher second
section sector security segment sensor sequence series server service
session severity shelf shell side signal signature site size sled slot
socket software source space spare speed spike stack staff stage standard
state statement station status step storage strategy stream strength
string structure style subject subnet subsystem success suite summary
supervisor supply surface switch symbol system table target task team
technique temperature template term terminal test text theory thing
thread threshold throughput tick ticket tier time timeout timestamp token
tool topic topology total touch tower trace track traffic transaction
transceiver transfer transition tray tree trend trouble tunnel turbine
type unit update uplink usage user utility value valve variable variance
vector velocity vendor version video violation voltage volume wait wake
wall warning watt wave week weight wheel window wire word worker workload
zone
bad big bright broken busy clean clear close cold cool correct critical
current dead deep dirty down dry dull early easy empty equal fair false
fast fatal fine firm flat fresh full good great green grey hard healthy
heavy high hot huge idle important inactive internal invalid large late
light likely live local long loose loud low main major minor missing
narrow near new nominal normal numb odd offline old online open orange
partial pending poor present primary prior quick quiet rapid rare raw ready
real recent red remote rich ripe rough round safe secondary secure severe
sharp short sick significant silent similar simple single slow small smart
soft solid spare special stable stale steady sticky stiff still strange
strict strong stuck sudden sure tall thermal thick thin tight tiny tired
total transient true typical unable unavailable unique unknown unusual
urgent usable useful usual valid warm weak wet wide wild wise wrong yellow
young
`)

func buildLexicon(words string) map[string]bool {
	m := make(map[string]bool, 2048)
	for _, w := range strings.Fields(words) {
		m[w] = true
	}
	return m
}

// Preprocessor chains the tokenizer, stopword filter and lemmatizer into
// the single pipeline used by the feature extractors and classifiers.
//
// Once configured, a Preprocessor is safe for concurrent use: Process
// allocates a fresh token slice per call and the tokenizer, stopword set
// and lemmatizer tables are read-only.
type Preprocessor struct {
	Tokenizer  *Tokenizer
	Lemmatizer *Lemmatizer
	// KeepStopwords disables the stopword filter when set.
	KeepStopwords bool
	// SkipLemmas disables lemmatization when set (used by the
	// lemmatization ablation bench).
	SkipLemmas bool
}

// NewPreprocessor returns the default pipeline: tokenize, drop stopwords,
// lemmatize.
func NewPreprocessor() *Preprocessor {
	return &Preprocessor{Tokenizer: NewTokenizer(), Lemmatizer: NewLemmatizer()}
}

// Process converts raw message text into the final feature tokens.
func (p *Preprocessor) Process(text string) []string {
	tokens := p.Tokenizer.Tokenize(text)
	if !p.KeepStopwords {
		tokens = RemoveStopwords(tokens)
	}
	if !p.SkipLemmas {
		for i, t := range tokens {
			tokens[i] = p.Lemmatizer.Lemma(t)
		}
	}
	return tokens
}

// Scratch carries the per-worker reusable state for ProcessInto: the
// output token slice and an interning table mapping raw tokens to their
// fully processed form (normalized, masked, stopword-filtered,
// lemmatized). Because the table caches the result of one pipeline
// configuration, a Scratch must not be shared between Preprocessors with
// different settings, and must not be used from multiple goroutines at
// once. The zero value is ready to use.
type Scratch struct {
	tokens   []string
	interned map[string]string
}

// maxInternedTokens bounds the intern table. Real syslog token
// vocabularies are small (a few thousand distinct tokens per cluster), so
// the cap only trips on adversarial input; the table is then cleared and
// rebuilt rather than letting memory grow without bound.
const maxInternedTokens = 8192

// ProcessInto is Process on reusable memory: the returned slice aliases
// sc and is valid until the next call with the same scratch. On the
// steady state (every distinct raw token already interned) it performs no
// allocations — tokenization yields substrings, and the per-token
// normalize/mask/stopword/lemma pipeline collapses to one map lookup.
func (p *Preprocessor) ProcessInto(text string, sc *Scratch) []string {
	if sc.interned == nil {
		sc.interned = make(map[string]string, 256)
	}
	sc.tokens = sc.tokens[:0]
	start := -1
	for i, r := range text {
		if isTokenRune(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			p.emit(text[start:i], sc)
			start = -1
		}
	}
	if start >= 0 {
		p.emit(text[start:], sc)
	}
	return sc.tokens
}

// emit appends the processed form of one raw token run to sc.tokens,
// consulting and maintaining the intern table. Interned strings are
// cloned so the table never pins a caller's message buffer.
func (p *Preprocessor) emit(raw string, sc *Scratch) {
	out, ok := sc.interned[raw]
	if !ok {
		if len(sc.interned) >= maxInternedTokens {
			clear(sc.interned)
		}
		out = strings.Clone(p.processToken(raw))
		sc.interned[strings.Clone(raw)] = out
	}
	if out != "" {
		sc.tokens = append(sc.tokens, out)
	}
}

// processToken runs the full per-token pipeline in Process order:
// normalize/mask, minimum-length filter, stopword filter, lemmatize.
// An empty result means the token is dropped.
func (p *Preprocessor) processToken(raw string) string {
	tok := p.Tokenizer.normalize(raw)
	if tok == "" || utf8.RuneCountInString(tok) < p.Tokenizer.MinLen {
		return ""
	}
	if !p.KeepStopwords && stopwords[tok] {
		return ""
	}
	if !p.SkipLemmas {
		tok = p.Lemmatizer.Lemma(tok)
	}
	return tok
}
