package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("CPU temperature above threshold, cpu clock throttled.")
	want := []string{"cpu", "temperature", "above", "threshold", "cpu", "clock", "throttled"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeKeepsUnderscoreIdentifiers(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("slurm_rpc_node_registration complete for cn42, real_memory low")
	has := func(w string) bool {
		for _, g := range got {
			if g == w {
				return true
			}
		}
		return false
	}
	if !has("slurm_rpc_node_registration") || !has("real_memory") {
		t.Errorf("underscore identifiers lost: %v", got)
	}
}

func TestTokenizeMasksNumbers(t *testing.T) {
	tk := NewTokenizer()
	a := tk.Tokenize("Warning: Socket 2 - CPU 23 throttling")
	b := tk.Tokenize("Warning: Socket 1 - CPU 7 throttling")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("number masking should equalize messages: %v vs %v", a, b)
	}
	found := false
	for _, tok := range a {
		if tok == NumToken {
			found = true
		}
	}
	if !found {
		t.Errorf("expected %s in %v", NumToken, a)
	}
}

func TestTokenizeMasksHexAndIP(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("mce at addr 0xdeadbeef42 from 10.1.7.200")
	wantHex, wantIP := false, false
	for _, tok := range got {
		if tok == HexToken {
			wantHex = true
		}
		if tok == IPToken {
			wantIP = true
		}
	}
	if !wantHex || !wantIP {
		t.Errorf("masking failed: %v", got)
	}
}

func TestTokenizeDoesNotMaskWords(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("deadbeef is a word but feed deed are short")
	for _, tok := range got {
		if tok == HexToken {
			// "deadbeef" has no digit, must not be masked
			t.Errorf("hex masking too aggressive: %v", got)
		}
	}
}

func TestTokenizeEmptyAndPunctuation(t *testing.T) {
	tk := NewTokenizer()
	if got := tk.Tokenize(""); len(got) != 0 {
		t.Errorf("empty input -> %v", got)
	}
	if got := tk.Tokenize("!!! --- ,,,"); len(got) != 0 {
		t.Errorf("punctuation-only input -> %v", got)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || IsStopword("temperature") {
		t.Error("stopword classification wrong")
	}
	got := RemoveStopwords([]string{"the", "cpu", "is", "throttled"})
	want := []string{"cpu", "throttled"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveStopwords = %v", got)
	}
}

func TestLemmaPaperExample(t *testing.T) {
	// §4.3.2: "The system has failed", "There was a failure in the
	// system", "The system is failing" — all instances of "fail".
	l := NewLemmatizer()
	for _, w := range []string{"failed", "failure", "failing", "fails", "failures"} {
		if got := l.Lemma(w); got != "fail" {
			t.Errorf("Lemma(%q) = %q, want \"fail\"", w, got)
		}
	}
}

func TestLemmaKnownForms(t *testing.T) {
	l := NewLemmatizer()
	cases := map[string]string{
		"throttled":    "throttle",
		"throttling":   "throttle",
		"connections":  "connection",
		"started":      "start",
		"running":      "run",
		"was":          "be",
		"errors":       "error",
		"sensors":      "sensor",
		"temperatures": "temperature",
		"registered":   "register",
		"asserted":     "assert",
		"closed":       "close",
		"denied":       "deny",
		"retries":      "retry",
		"devices":      "device",
		"updates":      "update",
		"overheating":  "overheat",
	}
	for in, want := range cases {
		if got := l.Lemma(in); got != want {
			t.Errorf("Lemma(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaUnknownUnchanged(t *testing.T) {
	l := NewLemmatizer()
	for _, w := range []string{"lpi_hbm_nn", "slurm_rpc_node_registration", "cn42", "xyzzy"} {
		if got := l.Lemma(w); got != w {
			t.Errorf("Lemma(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestLemmaIdempotent(t *testing.T) {
	l := NewLemmatizer()
	words := []string{"failed", "failure", "throttling", "connections", "was",
		"running", "sensors", "registered", "devices", "temperature"}
	for _, w := range words {
		once := l.Lemma(w)
		twice := l.Lemma(once)
		if once != twice {
			t.Errorf("Lemma not idempotent: %q -> %q -> %q", w, once, twice)
		}
	}
}

func TestPreprocessorPipeline(t *testing.T) {
	p := NewPreprocessor()
	got := p.Process("The system has failed: 3 sensors were throttled")
	want := []string{"system", "fail", NumToken, "sensor", "throttle"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Process = %v, want %v", got, want)
	}
}

func TestPreprocessorSkipLemmas(t *testing.T) {
	p := NewPreprocessor()
	p.SkipLemmas = true
	got := p.Process("sensors throttled")
	want := []string{"sensors", "throttled"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Process(SkipLemmas) = %v, want %v", got, want)
	}
}

// Property: tokenizer output never contains empty tokens, uppercase
// letters, or tokens shorter than MinLen.
func TestQuickTokenizeInvariants(t *testing.T) {
	tk := NewTokenizer()
	f := func(s string) bool {
		for _, tok := range tk.Tokenize(s) {
			if tok == "" || len([]rune(tok)) < tk.MinLen {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: lemmatization is a contraction on word length except for
// exception-table rewrites (be, retry, ...), which are bounded.
func TestQuickLemmaNeverPanicsAndBounded(t *testing.T) {
	l := NewLemmatizer()
	f := func(s string) bool {
		if len(s) > 40 {
			s = s[:40]
		}
		out := l.Lemma(s)
		return len(out) <= len(s)+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	tk := NewTokenizer()
	msg := "error: Node cn101 has low real_memory size (190000 < 256000) at 0xdeadbeef42"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Tokenize(msg)
	}
}

func BenchmarkPreprocess(b *testing.B) {
	p := NewPreprocessor()
	msg := "CPU 12 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Process(msg)
	}
}
