// Package textproc implements the preprocessing used in the paper (§4.3):
// a syslog-aware tokenizer, value normalization (hex IDs, numbers, IPs),
// an English stopword filter, and a rule-based WordNet-style lemmatizer
// ("failed"/"failure"/"failing" → "fail").
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenizer splits syslog message text into feature tokens. Underscores are
// part of tokens because syslog identifiers like "real_memory" and
// "slurm_rpc_node_registration" (paper Table 1) must survive as single
// features.
type Tokenizer struct {
	// Lowercase folds tokens to lower case (on by default via NewTokenizer).
	Lowercase bool
	// MaskNumbers replaces purely numeric tokens with "<num>" so "CPU 23"
	// and "CPU 7" produce identical feature sets.
	MaskNumbers bool
	// MaskHex replaces long hex strings (addresses, UUIDs fragments) with
	// "<hex>".
	MaskHex bool
	// MinLen drops tokens shorter than this many runes (after masking).
	MinLen int
}

// NewTokenizer returns the configuration used throughout the reproduction:
// lowercase, number and hex masking, minimum token length 2.
func NewTokenizer() *Tokenizer {
	return &Tokenizer{Lowercase: true, MaskNumbers: true, MaskHex: true, MinLen: 2}
}

// Mask placeholders emitted by the tokenizer.
const (
	NumToken = "<num>"
	HexToken = "<hex>"
	IPToken  = "<ip>"
)

// Tokenize splits s into normalized tokens.
func (t *Tokenizer) Tokenize(s string) []string {
	return t.TokenizeInto(make([]string, 0, 16), s)
}

// TokenizeInto appends the normalized tokens of s to dst and returns the
// extended slice. Passing the previous result re-sliced to dst[:0] reuses
// its backing array, so a steady-state caller tokenizes without
// allocating; the appended strings are substrings of s, mask constants,
// or (for tokens that needed case folding) freshly folded copies.
func (t *Tokenizer) TokenizeInto(dst []string, s string) []string {
	start := -1
	for i, r := range s {
		if isTokenRune(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			dst = t.appendToken(dst, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		dst = t.appendToken(dst, s[start:])
	}
	return dst
}

// appendToken normalizes one raw token run and appends it to dst unless
// normalization drops it.
func (t *Tokenizer) appendToken(dst []string, raw string) []string {
	tok := t.normalize(raw)
	if tok == "" || utf8.RuneCountInString(tok) < t.MinLen {
		return dst
	}
	return append(dst, tok)
}

func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

// normalize applies case folding and masking to one raw token.
func (t *Tokenizer) normalize(tok string) string {
	// Trim leading/trailing dots and underscores kept by the rune class
	// ("threshold." or version fragments). '.' and '_' are single ASCII
	// bytes that never appear inside a UTF-8 multi-byte sequence, so a
	// byte-wise trim is correct for any input and skips strings.Trim's
	// per-rune cutset scan.
	lo, hi := 0, len(tok)
	for lo < hi && (tok[lo] == '.' || tok[lo] == '_') {
		lo++
	}
	for hi > lo && (tok[hi-1] == '.' || tok[hi-1] == '_') {
		hi--
	}
	tok = tok[lo:hi]
	if tok == "" {
		return ""
	}
	if t.Lowercase {
		// strings.ToLower returns tok unchanged (no allocation) when it
		// is already lower-case ASCII — the common case for syslog text.
		tok = strings.ToLower(tok)
	}
	if looksLikeIP(tok) {
		return IPToken
	}
	if t.MaskNumbers && isNumeric(tok) {
		return NumToken
	}
	if t.MaskHex && isHexID(tok) {
		return HexToken
	}
	return tok
}

// isNumeric reports whether tok is digits with optional dots (counts,
// sizes, versions, temperatures like "95c" are not matched — trailing
// letters keep meaning).
func isNumeric(tok string) bool {
	digits := 0
	for _, r := range tok {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.':
		default:
			return false
		}
	}
	return digits > 0
}

// isHexID reports whether tok looks like a hex identifier: at least 6 hex
// chars, at least one digit (so English words like "deaded" don't match),
// optionally 0x-prefixed.
func isHexID(tok string) bool {
	s := strings.TrimPrefix(tok, "0x")
	if len(s) < 6 {
		return false
	}
	hasDigit := false
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			hasDigit = true
		case r >= 'a' && r <= 'f':
		case r >= 'A' && r <= 'F':
		default:
			return false
		}
	}
	return hasDigit
}

// looksLikeIP reports whether tok is a dotted-quad IPv4 address. It scans
// bytes directly instead of strings.Split so the hot tokenize path never
// allocates a parts slice.
func looksLikeIP(tok string) bool {
	octets, digits, n := 0, 0, 0
	for i := 0; i < len(tok); i++ {
		switch c := tok[i]; {
		case c >= '0' && c <= '9':
			digits++
			if digits > 3 {
				return false
			}
			n = n*10 + int(c-'0')
			if n > 255 {
				return false
			}
		case c == '.':
			if digits == 0 {
				return false
			}
			octets++
			digits, n = 0, 0
		default:
			return false
		}
	}
	return octets == 3 && digits > 0
}

// stopwords is the usual small English function-word list plus syslog
// boilerplate that carries no class signal.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"had": true, "has": true, "have": true, "he": true, "her": true,
	"his": true, "if": true, "in": true, "into": true, "is": true,
	"it": true, "its": true, "of": true, "on": true, "or": true,
	"that": true, "the": true, "their": true, "them": true, "then": true,
	"there": true, "these": true, "they": true, "this": true, "to": true,
	"was": true, "we": true, "were": true, "which": true, "will": true,
	"with": true, "you": true, "your": true, "not": true, "no": true,
	"do": true, "does": true, "did": true, "been": true, "being": true,
	"am": true, "can": true, "could": true, "should": true, "would": true,
	"may": true, "might": true, "must": true, "shall": true, "than": true,
	"too": true, "very": true, "so": true, "such": true, "only": true,
	"over": true, "under": true, "again": true, "further": true,
	"what": true, "when": true, "where": true, "who": true, "why": true,
	"how": true, "all": true, "any": true, "both": true, "each": true,
	"more": true, "most": true, "other": true, "some": true, "via": true,
}

// IsStopword reports whether the lower-case token is an English stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// RemoveStopwords filters stopwords out of tokens, in place.
func RemoveStopwords(tokens []string) []string {
	out := tokens[:0]
	for _, t := range tokens {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}
