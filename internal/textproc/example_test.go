package textproc_test

import (
	"fmt"

	"hetsyslog/internal/textproc"
)

func ExampleLemmatizer_Lemma() {
	// §4.3.2: "The system has failed", "There was a failure in the
	// system", "The system is failing" all reduce to "fail".
	l := textproc.NewLemmatizer()
	fmt.Println(l.Lemma("failed"), l.Lemma("failure"), l.Lemma("failing"))
	// Output: fail fail fail
}

func ExamplePreprocessor_Process() {
	p := textproc.NewPreprocessor()
	fmt.Println(p.Process("CPU 23 temperature above threshold, cpu clock throttled"))
	// Output: [cpu <num> temperature above threshold cpu clock throttle]
}
