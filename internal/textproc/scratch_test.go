package textproc

import (
	"fmt"
	"reflect"
	"testing"

	"hetsyslog/internal/raceflag"
)

// processCases is a spread of syslog-shaped inputs covering masking, case
// folding, trimming, stopwords, lemmas, unicode and adversarial shapes.
var processCases = []string{
	"",
	"   ",
	"CPU 12 Temperature Above Non-Recoverable - Asserted. Current temperature: 96C",
	"error: Node cn042 has low real_memory size (153694 < 256000)",
	"sshd[2783]: Connection closed by 10.12.0.7 port 22 [preauth]",
	"usb 1-1.4: new high-speed USB device number 7 using xhci_hcd",
	"GPU 0000beef:1a:00.0: temperature 93 exceeds slowdown threshold",
	"session opened for user root by (uid=0)",
	"__trimmed__ ..dots.. _.mixed._ ._",
	"failures failing failed FAILURE retries Retried denying",
	"über café 温度警告 processor throttled",
	"a b c of the and to is", // stopwords + below MinLen
	"0x7ffdeadbeef deadbeef12 1234567 12.34.56.78 999.1.1.1 1.2.3.4",
	"slurm_rpc_node_registration from node cn001 version 21.08.8",
}

// TestProcessIntoMatchesProcess requires the scratch-based path to produce
// exactly the tokens of the allocating path, across configurations and
// with the intern table warm and cold.
func TestProcessIntoMatchesProcess(t *testing.T) {
	configs := []struct {
		name          string
		keepStopwords bool
		skipLemmas    bool
	}{
		{"default", false, false},
		{"keep-stopwords", true, false},
		{"skip-lemmas", false, true},
		{"raw", true, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			p := NewPreprocessor()
			p.KeepStopwords = cfg.keepStopwords
			p.SkipLemmas = cfg.skipLemmas
			var sc Scratch
			// Two passes: cold intern table, then warm.
			for pass := 0; pass < 2; pass++ {
				for _, text := range processCases {
					want := p.Process(text)
					got := p.ProcessInto(text, &sc)
					if len(want) == 0 && len(got) == 0 {
						continue
					}
					if !reflect.DeepEqual(append([]string(nil), got...), want) {
						t.Errorf("pass %d, %q:\n got %q\nwant %q", pass, text, got, want)
					}
				}
			}
		})
	}
}

// TestTokenizeIntoMatchesTokenize checks the lower-level Into form and
// that the destination slice's backing array is reused.
func TestTokenizeIntoMatchesTokenize(t *testing.T) {
	tk := NewTokenizer()
	var dst []string
	for _, text := range processCases {
		want := tk.Tokenize(text)
		dst = tk.TokenizeInto(dst[:0], text)
		if fmt.Sprint(dst) != fmt.Sprint(want) {
			t.Errorf("%q: got %q, want %q", text, dst, want)
		}
	}
}

// TestScratchInternBounded fills the intern table past its cap and checks
// it resets instead of growing without bound, while staying correct.
func TestScratchInternBounded(t *testing.T) {
	p := NewPreprocessor()
	var sc Scratch
	for i := 0; i < maxInternedTokens+500; i++ {
		text := fmt.Sprintf("unique_token_%d throttled", i)
		got := p.ProcessInto(text, &sc)
		want := p.Process(text)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("iteration %d: got %q, want %q", i, got, want)
		}
	}
	if len(sc.interned) > maxInternedTokens {
		t.Errorf("intern table grew to %d entries, cap is %d", len(sc.interned), maxInternedTokens)
	}
}

// TestProcessIntoSteadyStateAllocs asserts the warm path is allocation
// free: every distinct token interned, the token slice backing reused.
func TestProcessIntoSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	p := NewPreprocessor()
	var sc Scratch
	msg := "CPU 12 Temperature Above Non-Recoverable - Asserted. Current temperature: 96C"
	p.ProcessInto(msg, &sc) // warm the intern table
	allocs := testing.AllocsPerRun(200, func() {
		p.ProcessInto(msg, &sc)
	})
	if allocs != 0 {
		t.Errorf("warm ProcessInto allocates %.1f objects/op, want 0", allocs)
	}
}
