//go:build !race

// Package raceflag exposes whether the race detector is compiled in, so
// allocation-counting tests (testing.AllocsPerRun ceilings) can skip
// themselves under -race, where the instrumentation's own allocations
// would make the counts meaningless.
package raceflag

// Enabled reports whether the binary was built with -race.
const Enabled = false
