package editdist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"saturday", "sunday", 3},
		{"CPU temperature above threshold", "CPU temperature above threshold", 0},
		{"héllo", "hello", 1}, // rune-wise, not byte-wise
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestPaperExample checks the distance-7 example from §4.3.1: the paper
// states the two thermal sentences have a Levenshtein distance of 7 under
// their tokenized metric; raw character distance is much larger, which is
// exactly why character-level bucketing splits them into separate buckets.
func TestPaperExample(t *testing.T) {
	a := "CPU temperature above threshold, cpu clock throttled."
	b := "CPU 1 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C"
	if d := Levenshtein(a, b); d <= 7 {
		t.Errorf("character-level distance = %d; expected > 7 (messages should land in different buckets)", d)
	}
	if WithinLevenshtein(a, b, 7) {
		t.Error("WithinLevenshtein should reject the pair at threshold 7")
	}
}

func TestWithinLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		k    int
		want bool
	}{
		{"kitten", "sitting", 3, true},
		{"kitten", "sitting", 2, false},
		{"abc", "abc", 0, true},
		{"abc", "abd", 0, false},
		{"", "1234567", 7, true},
		{"", "12345678", 7, false},
		{"x", "y", -1, false},
	}
	for _, c := range cases {
		if got := WithinLevenshtein(c.a, c.b, c.k); got != c.want {
			t.Errorf("WithinLevenshtein(%q,%q,%d) = %v, want %v", c.a, c.b, c.k, got, c.want)
		}
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"ca", "ac", 1}, // transposition
		{"abcd", "acbd", 1},
		{"kitten", "sitting", 3},
		{"", "", 0},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHamming(t *testing.T) {
	if d, ok := Hamming("karolin", "kathrin"); !ok || d != 3 {
		t.Errorf("Hamming = %d,%v want 3,true", d, ok)
	}
	if _, ok := Hamming("abc", "ab"); ok {
		t.Error("Hamming should reject unequal lengths")
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity("", ""); s != 1 {
		t.Errorf("Similarity of empties = %v", s)
	}
	if s := Similarity("abc", "abc"); s != 1 {
		t.Errorf("identical similarity = %v", s)
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint similarity = %v", s)
	}
}

// Property: metric axioms for Levenshtein on short random strings.
func TestQuickMetricAxioms(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			return false // symmetry
		}
		if (d == 0) != (a == b) {
			return false // identity of indiscernibles
		}
		return d >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality via a random third string.
func TestQuickTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randWord := func() string {
		n := rng.Intn(20)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(byte('a' + rng.Intn(6)))
		}
		return b.String()
	}
	for i := 0; i < 300; i++ {
		a, b, c := randWord(), randWord(), randWord()
		if Levenshtein(a, c) > Levenshtein(a, b)+Levenshtein(b, c) {
			t.Fatalf("triangle inequality violated for %q %q %q", a, b, c)
		}
	}
}

// Property: the banded variant agrees with the full DP whenever it returns ok.
func TestQuickBandedAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randWord := func() string {
		n := rng.Intn(30)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(byte('a' + rng.Intn(4)))
		}
		return b.String()
	}
	for i := 0; i < 500; i++ {
		a, b := randWord(), randWord()
		k := rng.Intn(10)
		full := Levenshtein(a, b)
		got := WithinLevenshtein(a, b, k)
		want := full <= k
		if got != want {
			t.Fatalf("WithinLevenshtein(%q,%q,%d) = %v, full distance %d", a, b, k, got, full)
		}
	}
}

func TestQuickDamerauLeqLevenshtein(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

var benchPairs = [][2]string{
	{"error: Node cn101 has low real_memory size (190000 < 256000)",
		"error: Node cn107 has low real_memory size (180000 < 256000)"},
	{"CPU 12 temperature above threshold, cpu clock throttled",
		"CPU 3 Temperature Above Non-Recoverable - Asserted"},
}

func BenchmarkLevenshteinFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range benchPairs {
			Levenshtein(p[0], p[1])
		}
	}
}

// BenchmarkLevenshteinBanded measures the banded early-exit variant used in
// the bucketing hot loop (DESIGN.md ablation: banded vs full DP).
func BenchmarkLevenshteinBanded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range benchPairs {
			WithinLevenshtein(p[0], p[1], 7)
		}
	}
}
