// Package editdist implements the minimum-edit-distance metrics the paper's
// legacy pipeline used to bucket syslog messages (§3): Levenshtein distance
// (with a banded early-exit variant for the hot bucketing loop), Hamming
// distance, and Damerau-Levenshtein with adjacent transpositions.
//
// All functions operate on runes so multi-byte UTF-8 in vendor messages is
// measured per character, not per byte.
package editdist

// Levenshtein returns the minimum number of single-character insertions,
// deletions and substitutions turning a into b. It uses the classic two-row
// dynamic program: O(len(a)*len(b)) time, O(min) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	return levRunes(ra, rb)
}

func levRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the shorter string as the row to minimize memory.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		ca := ra[i-1]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ca == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// WithinLevenshtein reports whether Levenshtein(a, b) <= k, using a banded
// dynamic program that only fills cells within k of the diagonal. For the
// bucketing workload (k = 7 against thousands of exemplars) this is the hot
// path: strings whose lengths differ by more than k are rejected in O(1),
// and the band costs O(k * max(len)) instead of O(len^2).
func WithinLevenshtein(a, b string, k int) bool {
	if k < 0 {
		return false
	}
	ra, rb := []rune(a), []rune(b)
	if abs(len(ra)-len(rb)) > k {
		return false
	}
	d, ok := BandedLevenshtein(ra, rb, k)
	return ok && d <= k
}

// BandedLevenshtein computes Levenshtein distance restricted to a diagonal
// band of half-width k. The boolean result is false when the true distance
// exceeds k (the returned int is then meaningless).
//
// When the shorter string fits the bit-parallel fast path (at most 64
// runes, all Latin-1) the distance comes from Myers' algorithm instead of
// the banded dynamic program: one word of bookkeeping per text character,
// no row slices allocated. Both WithinLevenshtein and the bucket matcher
// route through here, so they inherit the fast path automatically.
func BandedLevenshtein(ra, rb []rune, k int) (int, bool) {
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > k {
		return 0, false
	}
	const inf = 1 << 30
	n := len(rb)
	if n == 0 {
		return len(ra), len(ra) <= k
	}
	if n <= 64 && isLatin1(rb) {
		return myersLev(ra, rb, k)
	}
	prev := make([]int, n+1)
	curr := make([]int, n+1)
	for j := 0; j <= n && j <= k; j++ {
		prev[j] = j
	}
	for j := k + 1; j <= n; j++ {
		prev[j] = inf
	}
	for i := 1; i <= len(ra); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > n {
			hi = n
		}
		rowMin := inf
		if lo > 1 {
			curr[lo-1] = inf
		} else {
			curr[0] = i
			if i > k {
				curr[0] = inf
			}
			rowMin = curr[0]
		}
		ca := ra[i-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if ca == rb[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if up := prev[j] + 1; up < v {
				v = up
			}
			if left := curr[j-1] + 1; left < v {
				v = left
			}
			curr[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi < n {
			curr[hi+1] = inf
		}
		if rowMin > k {
			return 0, false
		}
		prev, curr = curr, prev
	}
	if prev[n] > k {
		return 0, false
	}
	return prev[n], true
}

// isLatin1 reports whether every rune fits the 256-entry match table the
// bit-parallel path indexes directly. Syslog text is overwhelmingly ASCII,
// so this almost always holds; anything wider falls back to the banded DP.
func isLatin1(rs []rune) bool {
	for _, r := range rs {
		if r > 0xff {
			return false
		}
	}
	return true
}

// myersLev is Myers' bit-parallel Levenshtein algorithm (in Hyyrö's
// formulation): the pattern rb (m <= 64 runes, Latin-1) is encoded as one
// match bitmask per character class, and each text character updates two
// delta words — pv/mv, the positions where the current DP column increases
// or decreases relative to the previous row — in O(1) word operations.
// The running score is the DP cell D[m][j]; after consuming the whole
// text it equals the full Levenshtein distance.
//
// Like the banded DP it reports (0, false) as soon as the distance
// provably exceeds k: each remaining text character can lower the final
// score by at most one, so score > k + remaining is a proof.
func myersLev(ra, rb []rune, k int) (int, bool) {
	m := len(rb)
	var peq [256]uint64
	for i, r := range rb {
		peq[r] |= 1 << uint(i)
	}
	var pv uint64 = ^uint64(0)
	var mv uint64
	score := m
	last := uint64(1) << uint(m-1)
	for j, r := range ra {
		var eq uint64
		if r <= 0xff {
			eq = peq[r]
		}
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		}
		if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		if remaining := len(ra) - j - 1; score > k+remaining {
			return 0, false
		}
	}
	if score > k {
		return 0, false
	}
	return score, true
}

// DamerauLevenshtein returns the edit distance allowing adjacent
// transpositions in addition to insert/delete/substitute (the "optimal
// string alignment" variant).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Three rows: i-2, i-1, i.
	n := len(rb)
	prev2 := make([]int, n+1)
	prev := make([]int, n+1)
	curr := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < v {
					v = t
				}
			}
			curr[j] = v
		}
		prev2, prev, curr = prev, curr, prev2
	}
	return prev[n]
}

// Hamming returns the number of positions at which equal-length strings
// differ; ok is false when lengths differ (Hamming distance is undefined).
func Hamming(a, b string) (d int, ok bool) {
	ra, rb := []rune(a), []rune(b)
	if len(ra) != len(rb) {
		return 0, false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			d++
		}
	}
	return d, true
}

// Similarity returns a normalized similarity in [0,1]:
// 1 - distance/max(len). Identical strings score 1; two empty strings
// score 1 by convention.
func Similarity(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	longest := len(ra)
	if len(rb) > longest {
		longest = len(rb)
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(levRunes(ra, rb))/float64(longest)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
