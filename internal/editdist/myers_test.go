package editdist

import (
	"math/rand"
	"strings"
	"testing"
)

// TestMyersAgreesWithDP drives random string pairs across the fast-path
// boundary conditions — pattern lengths around the 64-rune word limit,
// non-Latin-1 runes forcing the banded fallback, and text runes outside
// the pattern's match table — and checks WithinLevenshtein against the
// full dynamic program on every pair.
func TestMyersAgreesWithDP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabets := []string{
		"ab",          // dense matches
		"abcdefgh",    // sparse matches
		"aé¿ÿ",        // Latin-1 beyond ASCII (still fast path)
		"ab界emoji🙂",   // multi-byte runes force the banded fallback
		"0123456789.", // syslog-ish numerics
	}
	randWord := func(alpha string, maxLen int) string {
		runes := []rune(alpha)
		n := rng.Intn(maxLen + 1)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(runes[rng.Intn(len(runes))])
		}
		return b.String()
	}
	for i := 0; i < 4000; i++ {
		alpha := alphabets[rng.Intn(len(alphabets))]
		// Length cap swings across the 64-rune fast-path limit.
		maxLen := []int{8, 30, 63, 64, 65, 90}[rng.Intn(6)]
		a, b := randWord(alpha, maxLen), randWord(alpha, maxLen)
		k := rng.Intn(12)
		want := Levenshtein(a, b) <= k
		if got := WithinLevenshtein(a, b, k); got != want {
			t.Fatalf("WithinLevenshtein(%q,%q,%d) = %v, full DP says %v (distance %d)",
				a, b, k, got, want, Levenshtein(a, b))
		}
	}
}

// TestMyersExactDistance checks the fast path returns the true distance,
// not merely the within-k verdict, by comparing BandedLevenshtein's value
// against the full DP at a generous k.
func TestMyersExactDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randWord := func(maxLen int) []rune {
		n := rng.Intn(maxLen + 1)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = rune('a' + rng.Intn(5))
		}
		return rs
	}
	for i := 0; i < 1000; i++ {
		ra, rb := randWord(50), randWord(50)
		want := levRunes(ra, rb)
		got, ok := BandedLevenshtein(ra, rb, 100)
		if !ok || got != want {
			t.Fatalf("BandedLevenshtein(%q,%q,100) = (%d,%v), want (%d,true)",
				string(ra), string(rb), got, ok, want)
		}
	}
}

// TestMyersBoundary pins the word-size edge cases directly.
func TestMyersBoundary(t *testing.T) {
	a64 := strings.Repeat("a", 64)
	cases := []struct {
		a, b string
		k    int
		want bool
	}{
		{a64, a64, 0, true},
		{a64, strings.Repeat("a", 63) + "b", 0, false},
		{a64, strings.Repeat("a", 63) + "b", 1, true},
		{a64, strings.Repeat("a", 63), 1, true},   // m=63 pattern, 64 text
		{strings.Repeat("x", 64), a64, 63, false}, // distance exactly 64
		{strings.Repeat("x", 64), a64, 64, true},
		{"", a64, 64, true},
		{"ÿ", "y", 1, true}, // 0xff boundary rune
	}
	for _, c := range cases {
		if got := WithinLevenshtein(c.a, c.b, c.k); got != c.want {
			t.Errorf("WithinLevenshtein(%q,%q,%d) = %v, want %v", c.a, c.b, c.k, got, c.want)
		}
	}
}

// FuzzWithinLevenshtein asserts the banded/bit-parallel predicate is
// exactly equivalent to the reference dynamic program on arbitrary input.
func FuzzWithinLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "", 0)
	f.Add(strings.Repeat("a", 64), strings.Repeat("b", 64), 7)
	f.Add("héllo wörld", "hello world", 2)
	f.Add("CPU 12 temperature above threshold", "CPU 3 Temperature Above", 10)
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if k > 200 {
			k = 200 // keep the reference DP cheap
		}
		if len(a) > 300 {
			a = a[:300]
		}
		if len(b) > 300 {
			b = b[:300]
		}
		want := k >= 0 && Levenshtein(a, b) <= k
		if got := WithinLevenshtein(a, b, k); got != want {
			t.Fatalf("WithinLevenshtein(%q,%q,%d) = %v, reference says %v", a, b, k, got, want)
		}
	})
}

// BenchmarkLevenshteinMyers measures the bit-parallel fast path on the
// bucketing-shaped pairs (both under 64 runes, ASCII).
func BenchmarkLevenshteinMyers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range benchPairs {
			WithinLevenshtein(p[0], p[1], 7)
		}
	}
}
