package editdist_test

import (
	"fmt"

	"hetsyslog/internal/editdist"
)

func ExampleLevenshtein() {
	// Two slurmd messages differing only in node id and size.
	a := "error: Node cn101 has low real_memory size (190000 < 256000)"
	b := "error: Node cn107 has low real_memory size (180000 < 256000)"
	fmt.Println(editdist.Levenshtein(a, b))
	// Output: 2
}

func ExampleWithinLevenshtein() {
	// The paper's bucketing threshold is 7: near-duplicates join the same
	// bucket, differently-phrased messages do not.
	fmt.Println(editdist.WithinLevenshtein("CPU 3 throttled", "CPU 14 throttled", 7))
	fmt.Println(editdist.WithinLevenshtein(
		"CPU temperature above threshold, cpu clock throttled.",
		"CPU 1 Temperature Above Non-Recoverable - Asserted.", 7))
	// Output:
	// true
	// false
}
