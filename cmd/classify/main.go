// Command classify trains one of the paper's classifiers on a labelled
// corpus and then classifies syslog message text, either from the command
// line, from stdin (one message per line), or in an evaluation run.
//
// Usage:
//
//	classify -eval                              # train + held-out report
//	echo "CPU 3 throttling" | classify          # classify stdin lines
//	classify -model "Random Forest" -eval
//	classify -train-tsv corpus.tsv -eval        # category<TAB>...<TAB>text
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hetsyslog/internal/core"
	"hetsyslog/internal/loggen"
)

func main() {
	var (
		modelName = flag.String("model", "Complement Naive Bayes",
			"classifier: "+strings.Join(core.ModelNames(), " | "))
		scale       = flag.Int("train-scale", 20000, "synthetic training corpus size")
		trainTSV    = flag.String("train-tsv", "", "train from TSV (category<TAB>[...<TAB>]text) instead of synthetic data")
		seed        = flag.Int64("seed", 1, "generator/split seed")
		eval        = flag.Bool("eval", false, "hold out 20% and print the evaluation report")
		savePath    = flag.String("save", "", "write the trained pipeline to this file")
		loadPath    = flag.String("load", "", "load a previously saved pipeline instead of training")
		cacheOn     = flag.Bool("classify-cache", true, "cache classifications of repeated/templated stdin lines")
		cacheSize   = flag.Int("classify-cache-size", core.DefaultCacheSize, "classify cache entries per level")
		cacheShards = flag.Int("classify-cache-shards", core.DefaultCacheShards, "classify cache shard count (rounded up to a power of two)")
	)
	flag.Parse()

	var tc *core.TextClassifier
	var test *core.Corpus
	if *loadPath != "" {
		var err error
		tc, err = core.LoadClassifierFile(*loadPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "classify: loaded %s pipeline from %s (%d features)\n",
			tc.Model.Name(), *loadPath, tc.Vectorizer.Dims())
		if *eval {
			corpus, err := loadCorpus(*trainTSV, *scale, *seed)
			if err != nil {
				fatal(err)
			}
			_, test = corpus.Split(0.2, *seed)
		}
	} else {
		corpus, err := loadCorpus(*trainTSV, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		train := corpus
		if *eval {
			train, test = corpus.Split(0.2, *seed)
		}
		model, err := core.NewModel(*modelName)
		if err != nil {
			fatal(err)
		}
		tc, err = core.Train(model, train, core.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "classify: trained %s on %d messages in %v (%d features)\n",
			model.Name(), train.Len(), tc.TrainTime.Round(1e6), tc.Vectorizer.Dims())
	}
	if *savePath != "" {
		if err := tc.SaveFile(*savePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "classify: pipeline saved to %s\n", *savePath)
	}

	if *eval {
		res, err := tc.Evaluate(test)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("weighted F1 = %.6f, test time = %v over %d messages\n\n",
			res.WeightedF1, res.TestTime.Round(1e6), test.Len())
		fmt.Println(res.Confusion.Report())
		fmt.Println(res.Confusion.String())
		return
	}

	if args := flag.Args(); len(args) > 0 {
		fmt.Printf("%s\t%s\n", tc.Classify(strings.Join(args, " ")), strings.Join(args, " "))
		return
	}
	// The stdin loop runs the same cached, scratch-reusing fast path the
	// collector service deploys: repeated and templated lines (the norm in
	// piped-in log files) skip the model after the first occurrence.
	var cache *core.ClassifyCache
	if *cacheOn {
		cache = core.NewClassifyCache(*cacheShards, *cacheSize)
	}
	var scratch core.ClassifyScratch
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		label, _ := tc.PredictCached(line, cache, &scratch)
		fmt.Printf("%s\t%s\n", tc.Labels[label], line)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func loadCorpus(tsv string, scale int, seed int64) (*core.Corpus, error) {
	if tsv == "" {
		g := loggen.NewGenerator(seed)
		examples, err := g.Dataset(loggen.ScaledPaperCounts(scale))
		if err != nil {
			return nil, err
		}
		return core.FromExamples(examples), nil
	}
	return core.ReadCorpusTSVFile(tsv)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}
