// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id] [-scale n] [-seed n] [-models csv] [-out file]
//
// With no -run flag every experiment runs in order. -scale 196393
// reproduces the full-size corpus of the paper (Table 2); the default of
// 20000 preserves the class imbalance at laptop scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hetsyslog/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment ids and exit")
		run    = flag.String("run", "", "experiment id to run (default: all); one of "+strings.Join(experiments.Names(), ","))
		scale  = flag.Int("scale", 20000, "approximate corpus size (paper: 196393)")
		seed   = flag.Int64("seed", 1, "generator/split seed")
		models = flag.String("models", "", "comma-separated model subset for figure3/ablation")
		out    = flag.String("out", "", "also append results to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.Names() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}
	r := experiments.NewRunner(cfg)

	ids := experiments.Names()
	if *run != "" {
		ids = []string{*run}
	}

	var sink *os.File
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}

	for _, id := range ids {
		start := time.Now()
		txt, err := r.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		block := fmt.Sprintf("=== %s (scale=%d seed=%d, took %v) ===\n%s\n",
			id, *scale, *seed, time.Since(start).Round(time.Millisecond), txt)
		fmt.Print(block)
		if sink != nil {
			if _, err := sink.WriteString(block); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: write:", err)
				os.Exit(1)
			}
		}
	}
}
