// Command tivan runs the log store server: syslog listeners on the front,
// the collector pipeline in the middle, the sharded document store with its
// HTTP search/aggregation API on the back — the single-binary equivalent of
// the paper's rsyslog + Fluentd + OpenSearch stack (§4.2).
//
// Usage:
//
//	tivan [-http :9200] [-udp :5514] [-tcp :5514] [-shards 6] [-flush-workers 2]
//	      [-metrics-addr :9600] [-spool-dir /var/spool/tivan]
//	      [-spool-max-bytes 1073741824] [-write-timeout 30s]
//	      [-detect] [-detect-window 1m] [-detect-zscore 3]
//
// With -cluster-nodes, tivan becomes a stateless cluster front instead
// of a single-node store: ingest routes across the listed store nodes
// (each itself a plain tivan) with -replication copies per document, and
// the HTTP API scatter-gathers queries across them:
//
//	tivan -cluster-nodes http://10.0.0.1:9200,http://10.0.0.2:9200,http://10.0.0.3:9200 \
//	      -replication 2 -spool-dir /var/spool/tivan
//
// Try it:
//
//	logger -n 127.0.0.1 -P 5514 -d "CPU 3 temperature above threshold"
//	curl -s localhost:9200/stats
//	curl -s -X POST localhost:9200/search -d '{"query":{"match":{"text":"temperature"}},"size":5}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/detect"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/obs"
	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
)

func main() {
	var (
		httpAddr    = flag.String("http", ":9200", "HTTP API listen address")
		udpAddr     = flag.String("udp", ":5514", "syslog UDP listen address (empty disables)")
		tcpAddr     = flag.String("tcp", ":5514", "syslog TCP listen address (empty disables)")
		shards      = flag.Int("shards", 6, "index shard count (the paper ran 6 OpenSearch nodes)")
		dataFile    = flag.String("data", "", "snapshot file: loaded at startup, written at shutdown")
		retention   = flag.Duration("retention", 0, "drop documents older than this (0 = keep forever)")
		flushers    = flag.Int("flush-workers", 1, "concurrent pipeline flushers (batches in flight)")
		metricsAddr = flag.String("metrics-addr", "", "dedicated listen address serving /metrics and /debug/pprof (empty disables)")
		spoolDir    = flag.String("spool-dir", "", "directory for the disk spill queue: batches the store refuses spool here and replay on recovery (empty disables)")
		spoolMax    = flag.Int64("spool-max-bytes", 0, "spool size bound; oldest segment evicted past it (0 = unbounded)")
		writeTO     = flag.Duration("write-timeout", 0, "per-attempt sink write timeout (0 = default 30s)")
		breakerThr  = flag.Int("breaker-threshold", 0, "consecutive failed writes that trip the sink circuit breaker (0 = default 5)")
		ingestBatch = flag.Int("ingest-batch", 0, "max syslog messages per listener read-loop batch handed to the pipeline (0 = default 256)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file at clean shutdown (empty disables)")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file at clean shutdown (empty disables)")
		gcPercent   = flag.Int("gc-percent", 0, "runtime GC target percentage (debug.SetGCPercent; 0 keeps the Go default of 100). The arena-backed store keeps the retained corpus in pointer-free slabs, so higher values trade memory headroom for fewer GC cycles")

		detectOn  = flag.Bool("detect", false, "enable the streaming security detectors (rate spikes + sensitive patterns) as a pipeline stage; single-node mode only")
		detectWin = flag.Duration("detect-window", 0, "detector sliding window and per-source alert cooldown (0 = default 1m)")
		detectZ   = flag.Float64("detect-zscore", 0, "rate-spike threshold in decayed standard deviations (0 = default 3)")
		detectMax = flag.Int("detect-max-sources", 0, "tracked detector sources before idlest-entry eviction (0 = default 1<<20)")

		clusterNodes = flag.String("cluster-nodes", "", "comma-separated store node base URLs; non-empty switches tivan into cluster front mode (router + query coordinator, no local store)")
		replication  = flag.Int("replication", 0, "copies of each document across cluster nodes (0 = default 2)")
		partitions   = flag.Int("partitions", 0, "hash partitions for cluster placement (0 = default 32; pick once per cluster)")
		timeSlice    = flag.Duration("time-slice", 0, "time bucket mixed into cluster routing so hosts spread over nodes (0 = default 1h)")
		clusterCodec = flag.String("cluster-codec", "", "wire codec for node index batches: binary (default, falls back to json per node) or json")
		queryCache   = flag.Int("query-cache-size", 0, "coordinator merged-result cache entries for count/datehist/terms (0 = default 256, negative disables)")
	)
	flag.Parse()

	if *gcPercent > 0 {
		debug.SetGCPercent(*gcPercent)
	}

	if *clusterNodes != "" {
		if err := runClusterFront(clusterFlags{
			httpAddr: *httpAddr, udpAddr: *udpAddr, tcpAddr: *tcpAddr,
			metricsAddr: *metricsAddr, flushers: *flushers,
			ingestBatch: *ingestBatch, writeTO: *writeTO,
			nodes: *clusterNodes, replication: *replication,
			partitions: *partitions, timeSlice: *timeSlice,
			spoolDir: *spoolDir, spoolMax: *spoolMax, breakerThr: *breakerThr,
			codec: *clusterCodec, queryCacheSize: *queryCache,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "tivan:", err)
			os.Exit(1)
		}
		return
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tivan:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	reg := obs.NewRegistry()
	obs.RegisterRuntimeMemStats(reg)
	st := store.New(*shards)
	st.Instrument(reg)
	if *dataFile != "" {
		if err := st.LoadFile(*dataFile); err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, "tivan: load snapshot:", err)
				os.Exit(1)
			}
		} else {
			fmt.Printf("tivan: restored %d docs from %s\n", st.Count(), *dataFile)
		}
	}
	src := collector.NewSyslogSource(*udpAddr, *tcpAddr)
	src.MaxBatch = *ingestBatch
	src.Metrics = reg
	pipeCfg := &collector.Config{
		FlushWorkers:     *flushers,
		SpoolDir:         *spoolDir,
		SpoolMaxBytes:    *spoolMax,
		WriteTimeout:     *writeTO,
		BreakerThreshold: *breakerThr,
	}
	if err := pipeCfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tivan:", err)
		os.Exit(1)
	}
	pipe := &collector.Pipeline{
		Source:  src,
		Sink:    &collector.StoreSink{Store: st},
		Config:  pipeCfg,
		Metrics: reg,
		// StoreSink copies everything it retains into the store's arenas,
		// so leased syslog buffers go straight back to the listener pool.
		Release: func(r collector.Record) { syslog.Recycle(r.Msg) },
	}

	// Streaming detectors: tivan has no classifier, so rate baselines key
	// on (host, app) instead of (host, category); sensitive patterns are
	// unaffected. Alerts print to stderr and are served at /alerts.
	var alerts *monitor.AlertManager
	var det *detect.Detector
	if *detectOn {
		alerts = &monitor.AlertManager{
			Notifier: monitor.NotifierFunc(func(a monitor.Alert) {
				fmt.Fprintln(os.Stderr, "ALERT", a)
			}),
		}
		var err error
		det, err = detect.New(detect.Config{
			Window:     *detectWin,
			ZScore:     *detectZ,
			MaxSources: *detectMax,
			Alerts:     alerts,
			Metrics:    reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tivan:", err)
			os.Exit(1)
		}
		pipe.Stages = []collector.Stage{det}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 2)
	go func() { errCh <- pipe.Run(ctx) }()

	if *retention > 0 {
		go func() {
			tick := time.NewTicker(time.Minute)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n := st.DeleteBefore(time.Now().Add(-*retention)); n > 0 {
						st.Compact()
						fmt.Printf("tivan: retention dropped %d docs\n", n)
					}
				}
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", st.Handler())
	mux.Handle("GET /metrics", reg.Handler())
	if det != nil {
		mux.HandleFunc("GET /alerts", alerts.ServeAlerts)
		mux.HandleFunc("GET /detect/state", det.ServeState)
	}
	httpSrv := &http.Server{Addr: *httpAddr, Handler: mux}
	go func() { errCh <- httpSrv.ListenAndServe() }()
	if *metricsAddr != "" {
		go func() { errCh <- serveObs(*metricsAddr, reg) }()
	}

	go func() {
		<-src.Ready()
		fmt.Printf("tivan: syslog udp=%s tcp=%s, http=%s, %d shards\n",
			src.BoundUDP, src.BoundTCP, *httpAddr, *shards)
	}()

	select {
	case <-ctx.Done():
		fmt.Println("\ntivan: shutting down;", st.String())
		if *dataFile != "" {
			if err := st.SaveFile(*dataFile); err != nil {
				fmt.Fprintln(os.Stderr, "tivan: snapshot:", err)
			} else {
				fmt.Printf("tivan: snapshot written to %s\n", *dataFile)
			}
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "tivan:", err)
			os.Exit(1)
		}
	}
}

// serveObs runs the dedicated observability endpoint: Prometheus scrapes
// at /metrics plus the pprof profiling surface, kept off the main API
// address so profiling is never exposed alongside the public port.
func serveObs(addr string, reg *obs.Registry) error {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return (&http.Server{Addr: addr, Handler: mux}).ListenAndServe()
}
