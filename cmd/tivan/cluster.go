package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetsyslog/internal/cluster"
	"hetsyslog/internal/collector"
	"hetsyslog/internal/obs"
)

// clusterFlags carries the subset of tivan's flags cluster front mode
// uses; store-only flags (-shards, -data, -retention) do not apply — a
// front holds no documents.
type clusterFlags struct {
	httpAddr, udpAddr, tcpAddr, metricsAddr string
	flushers, ingestBatch                   int
	writeTO                                 time.Duration

	nodes          string
	replication    int
	partitions     int
	timeSlice      time.Duration
	spoolDir       string
	spoolMax       int64
	breakerThr     int
	codec          string
	queryCacheSize int
}

// runClusterFront runs tivan as a stateless cluster front: syslog
// listeners feed the pipeline, the pipeline's sink is the cluster
// router (per-node breakers and spools instead of the single-node
// pipeline spool), and the HTTP API is the scatter-gather coordinator
// speaking the same query surface as a single store node.
func runClusterFront(f clusterFlags) error {
	var nodes []string
	for _, n := range strings.Split(f.nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	ccfg := cluster.Config{
		Nodes:            nodes,
		Replication:      f.replication,
		Partitions:       f.partitions,
		TimeSlice:        f.timeSlice,
		SpoolDir:         f.spoolDir,
		SpoolMaxBytes:    f.spoolMax,
		BreakerThreshold: f.breakerThr,
		Codec:            f.codec,
		QueryCacheSize:   f.queryCacheSize,
		// One shared ingest generation ties the router to the coordinator's
		// query cache: deliveries and spool replays invalidate cached
		// aggregates by advancing it.
		Gen: cluster.NewGeneration(),
	}

	reg := obs.NewRegistry()
	router, err := cluster.NewRouter(ccfg, reg)
	if err != nil {
		return err
	}
	coord, err := cluster.NewCoordinator(ccfg, reg)
	if err != nil {
		return err
	}

	src := collector.NewSyslogSource(f.udpAddr, f.tcpAddr)
	src.MaxBatch = f.ingestBatch
	src.Metrics = reg
	// The router owns durability (per-node breakers + spools), so the
	// pipeline runs without its own spool: a router write error already
	// means "no replica and no spool took it", which the pipeline's
	// retry/drop accounting surfaces honestly.
	pipeCfg := &collector.Config{
		FlushWorkers: f.flushers,
		WriteTimeout: f.writeTO,
	}
	if err := pipeCfg.Validate(); err != nil {
		return err
	}
	pipe := &collector.Pipeline{
		Source:  src,
		Sink:    router,
		Config:  pipeCfg,
		Metrics: reg,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	router.Start(ctx)

	errCh := make(chan error, 2)
	go func() { errCh <- pipe.Run(ctx) }()

	mux := http.NewServeMux()
	mux.Handle("/", coord.Handler())
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /cluster/nodes", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(router.Stats())
	})
	httpSrv := &http.Server{Addr: f.httpAddr, Handler: mux}
	go func() { errCh <- httpSrv.ListenAndServe() }()
	if f.metricsAddr != "" {
		go func() { errCh <- serveObs(f.metricsAddr, reg) }()
	}

	repl := f.replication
	if repl == 0 {
		repl = cluster.DefaultReplication
		if repl > len(nodes) {
			repl = len(nodes)
		}
	}
	go func() {
		<-src.Ready()
		fmt.Printf("tivan: cluster front, syslog udp=%s tcp=%s, http=%s, %d nodes, replication %d\n",
			src.BoundUDP, src.BoundTCP, f.httpAddr, len(nodes), repl)
	}()

	select {
	case <-ctx.Done():
		fmt.Println("\ntivan: cluster front shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
		if err := router.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tivan: router close:", err)
		}
		return nil
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}
