package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: hetsyslog
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkIngestEndToEnd/uniform/cache=off-8         	     115	  37800011 ns/op	    108360 recs/s	 5250427 B/op	   18492 allocs/op
BenchmarkIngestEndToEnd/zipf/cache=on             	     206	  18490968 ns/op	    221514 recs/s	 5198828 B/op	   14927 allocs/op
BenchmarkStoreIndexBatch  	   23978	    108423 ns/op	   1180558 recs/s	   76941 B/op	       4 allocs/op
PASS
ok  	hetsyslog	12.457s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// The -8 GOMAXPROCS suffix is stripped so names compare across boxes.
	r, ok := got["BenchmarkIngestEndToEnd/uniform/cache=off"]
	if !ok {
		t.Fatalf("missing uniform bench in %v", got)
	}
	if r["ns/op"] != 37800011 || r["recs/s"] != 108360 || r["allocs/op"] != 18492 {
		t.Errorf("uniform metrics = %v", r)
	}
	if got["BenchmarkStoreIndexBatch"]["recs/s"] != 1180558 {
		t.Errorf("store batch metrics = %v", got["BenchmarkStoreIndexBatch"])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok  \thetsyslog\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %v from non-bench output", got)
	}
}

func TestDelta(t *testing.T) {
	cases := []struct {
		old, cur float64
		want     string
	}{
		{100, 150, "+50.0%"},
		{200, 100, "-50.0%"},
		{0, 5, "new"},
		{0, 0, "0%"},
	}
	for _, tc := range cases {
		if got := delta(tc.old, tc.cur); got != tc.want {
			t.Errorf("delta(%v, %v) = %q, want %q", tc.old, tc.cur, got, tc.want)
		}
	}
}

func TestPrintTrajectory(t *testing.T) {
	pr6 := map[string]Result{
		"BenchmarkA": {"recs/s": 1000},
	}
	pr8 := map[string]Result{
		"BenchmarkA": {"recs/s": 1500},
		"BenchmarkB": {"allocs/op": 10},
	}
	cur := map[string]Result{
		"BenchmarkA": {"recs/s": 3000},
		"BenchmarkB": {"allocs/op": 2},
	}
	var sb strings.Builder
	printTrajectory(&sb, []string{"pr6", "pr8"}, []map[string]Result{pr6, pr8}, cur)
	out := sb.String()
	// Columns for both recordings, the current run, and delta vs the LAST
	// recording (3000 vs pr8's 1500 = +100%); BenchmarkB is absent from
	// pr6 so its column prints "-".
	for _, want := range []string{"pr6", "pr8", "current", "+100.0%", "-80.0%", "1000.0", "1500.0", "3000.0", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory table missing %q:\n%s", want, out)
		}
	}
}

func TestPrintDelta(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA":    {"ns/op": 200, "recs/s": 1000},
		"BenchmarkGone": {"ns/op": 50},
	}
	cur := map[string]Result{
		"BenchmarkA":   {"ns/op": 100, "recs/s": 2000},
		"BenchmarkNew": {"ns/op": 42},
	}
	var sb strings.Builder
	printDelta(&sb, base, cur)
	out := sb.String()
	for _, want := range []string{"BenchmarkA", "BenchmarkGone", "BenchmarkNew", "-50.0%", "+100.0%", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
}
