// Command benchdelta turns `go test -bench` output into a small JSON
// document and compares runs, so benchmark trajectories can be committed
// next to the code they measure and CI can print a benchstat-style delta
// against the recorded baseline without external tooling.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchdelta -out bench.json
//	go test -run '^$' -bench . -benchmem ./... | benchdelta -baseline bench.json
//
// With -out the parsed results are written as JSON. With -baseline the
// current run is compared metric by metric against the recorded file and
// printed as a table; the tool always exits zero, because benchmark noise
// on shared runners must not fail a build — the delta is information, not
// a gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's metrics, keyed by unit ("ns/op",
// "recs/s", "B/op", "allocs/op", ...).
type Result map[string]float64

// File is the JSON document benchdelta reads and writes.
type File struct {
	Benches map[string]Result `json:"benches"`
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. A result line looks like:
//
//	BenchmarkName/sub-8   206   18490968 ns/op   221514 recs/s   14927 allocs/op
//
// i.e. a Benchmark- prefixed name, the iteration count, then value/unit
// pairs. Non-benchmark lines (goos, pkg, PASS, ok ...) are skipped. The
// trailing -N GOMAXPROCS suffix is stripped so results compare across
// machines.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(f[1]); err != nil {
			continue // not an iteration count: some other Benchmark- line
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			res[f[i+1]] = v
		}
		if len(res) > 0 {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// delta formats the relative change from old to new: negative is a
// reduction. For throughput units (anything per second) higher is better;
// for everything else (ns/op, B/op, allocs/op) lower is better, and the
// sign convention is left to the reader — the table shows both values.
func delta(old, cur float64) string {
	if old == 0 {
		if cur == 0 {
			return "0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", (cur-old)/old*100)
}

func main() {
	outPath := flag.String("out", "", "write parsed results as JSON to this file")
	basePath := flag.String("baseline", "", "compare against this recorded JSON file")
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchdelta: no benchmark results on stdin")
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(File{Benches: cur}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdelta:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdelta:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchdelta: %d results written to %s\n", len(cur), *outPath)
	}

	if *basePath != "" {
		data, err := os.ReadFile(*basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdelta:", err)
			os.Exit(1)
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchdelta:", err)
			os.Exit(1)
		}
		printDelta(os.Stdout, base.Benches, cur)
	}
}

// printDelta writes the comparison table: one line per benchmark metric
// present in either run, sorted by benchmark name.
func printDelta(w io.Writer, base, cur map[string]Result) {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	for n := range base {
		if _, ok := cur[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	tw := bufio.NewWriter(w)
	defer tw.Flush()
	fmt.Fprintf(tw, "%-55s %-12s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "delta")
	for _, n := range names {
		b, c := base[n], cur[n]
		units := make([]string, 0, len(c))
		for u := range c {
			units = append(units, u)
		}
		for u := range b {
			if _, ok := c[u]; !ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(tw, "%-55s %-12s %14.1f %14.1f %8s\n",
				n, u, b[u], c[u], delta(b[u], c[u]))
		}
	}
}
