// Command benchdelta turns `go test -bench` output into a small JSON
// document and compares runs, so benchmark trajectories can be committed
// next to the code they measure and CI can print a benchstat-style delta
// against the recorded baseline without external tooling.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchdelta -out bench.json
//	go test -run '^$' -bench . -benchmem ./... | benchdelta -baseline bench.json
//	go test -run '^$' -bench . -benchmem ./... | benchdelta -baseline pr6.json,pr8.json,pr10.json
//
// With -out the parsed results are written as JSON. With -baseline the
// current run is compared metric by metric against the recorded file and
// printed as a table; the tool always exits zero, because benchmark noise
// on shared runners must not fail a build — the delta is information, not
// a gate. A comma-separated -baseline list prints the full trajectory: one
// numeric column per recorded file (in the order given) plus the current
// run, with the delta computed against the last file in the list.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's metrics, keyed by unit ("ns/op",
// "recs/s", "B/op", "allocs/op", ...).
type Result map[string]float64

// File is the JSON document benchdelta reads and writes.
type File struct {
	Benches map[string]Result `json:"benches"`
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. A result line looks like:
//
//	BenchmarkName/sub-8   206   18490968 ns/op   221514 recs/s   14927 allocs/op
//
// i.e. a Benchmark- prefixed name, the iteration count, then value/unit
// pairs. Non-benchmark lines (goos, pkg, PASS, ok ...) are skipped. The
// trailing -N GOMAXPROCS suffix is stripped so results compare across
// machines.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(f[1]); err != nil {
			continue // not an iteration count: some other Benchmark- line
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			res[f[i+1]] = v
		}
		if len(res) > 0 {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// delta formats the relative change from old to new: negative is a
// reduction. For throughput units (anything per second) higher is better;
// for everything else (ns/op, B/op, allocs/op) lower is better, and the
// sign convention is left to the reader — the table shows both values.
func delta(old, cur float64) string {
	if old == 0 {
		if cur == 0 {
			return "0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", (cur-old)/old*100)
}

func main() {
	outPath := flag.String("out", "", "write parsed results as JSON to this file")
	basePath := flag.String("baseline", "", "comma-separated recorded JSON file(s) to compare against; several files print a trajectory")
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchdelta: no benchmark results on stdin")
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(File{Benches: cur}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdelta:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdelta:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchdelta: %d results written to %s\n", len(cur), *outPath)
	}

	if *basePath != "" {
		var labels []string
		var bases []map[string]Result
		for _, p := range strings.Split(*basePath, ",") {
			if p = strings.TrimSpace(p); p == "" {
				continue
			}
			data, err := os.ReadFile(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchdelta:", err)
				os.Exit(1)
			}
			var base File
			if err := json.Unmarshal(data, &base); err != nil {
				fmt.Fprintln(os.Stderr, "benchdelta:", err)
				os.Exit(1)
			}
			labels = append(labels, strings.TrimSuffix(strings.TrimPrefix(
				p[strings.LastIndexByte(p, '/')+1:], "BENCH_"), ".json"))
			bases = append(bases, base.Benches)
		}
		switch len(bases) {
		case 0:
		case 1:
			printDelta(os.Stdout, bases[0], cur)
		default:
			printTrajectory(os.Stdout, labels, bases, cur)
		}
	}
}

// printTrajectory writes the multi-baseline comparison: one numeric column
// per recorded file (oldest first, in the order given on the command
// line), then the current run, then the current run's delta against the
// last recorded file. Metrics a given recording lacks print as "-".
func printTrajectory(w io.Writer, labels []string, bases []map[string]Result, cur map[string]Result) {
	seen := make(map[string]bool)
	var names []string
	add := func(m map[string]Result) {
		for n := range m {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	add(cur)
	for _, b := range bases {
		add(b)
	}
	sort.Strings(names)

	tw := bufio.NewWriter(w)
	defer tw.Flush()
	fmt.Fprintf(tw, "%-55s %-12s", "benchmark", "metric")
	for _, l := range labels {
		fmt.Fprintf(tw, " %12s", l)
	}
	fmt.Fprintf(tw, " %12s %8s\n", "current", "delta")

	last := bases[len(bases)-1]
	for _, n := range names {
		useen := make(map[string]bool)
		var units []string
		for u := range cur[n] {
			useen[u] = true
			units = append(units, u)
		}
		for _, b := range bases {
			for u := range b[n] {
				if !useen[u] {
					useen[u] = true
					units = append(units, u)
				}
			}
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(tw, "%-55s %-12s", n, u)
			for _, b := range bases {
				if v, ok := b[n][u]; ok {
					fmt.Fprintf(tw, " %12.1f", v)
				} else {
					fmt.Fprintf(tw, " %12s", "-")
				}
			}
			if v, ok := cur[n][u]; ok {
				fmt.Fprintf(tw, " %12.1f %8s\n", v, delta(last[n][u], v))
			} else {
				fmt.Fprintf(tw, " %12s %8s\n", "-", "")
			}
		}
	}
}

// printDelta writes the comparison table: one line per benchmark metric
// present in either run, sorted by benchmark name.
func printDelta(w io.Writer, base, cur map[string]Result) {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	for n := range base {
		if _, ok := cur[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	tw := bufio.NewWriter(w)
	defer tw.Flush()
	fmt.Fprintf(tw, "%-55s %-12s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "delta")
	for _, n := range names {
		b, c := base[n], cur[n]
		units := make([]string, 0, len(c))
		for u := range c {
			units = append(units, u)
		}
		for u := range b {
			if _, ok := c[u]; !ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(tw, "%-55s %-12s %14.1f %14.1f %8s\n",
				n, u, b[u], c[u], delta(b[u], c[u]))
		}
	}
}
