// Command collector runs the full real-time classification service: it
// listens for syslog, classifies every message with a trained model,
// indexes the results (with categories) into an embedded Tivan store
// exposed over HTTP, and prints notification-worthy alerts — the deployed
// system the paper describes, in one process.
//
// Usage:
//
//	collector [-udp :5514] [-tcp :5514] [-http :9200] [-model "Random Forest"]
//	          [-train-scale 20000] [-cooldown 1m] [-workers 8] [-flush-workers 2]
//	          [-metrics-addr :9600] [-classify-cache=false]
//	          [-classify-cache-size 32768] [-classify-cache-shards 8]
//	          [-spool-dir /var/spool/collector] [-spool-max-bytes 1073741824]
//	          [-write-timeout 30s] [-breaker-threshold 5]
//	          [-detect] [-detect-window 1m] [-detect-zscore 3]
//	          [-detect-max-sources 1048576]
//
// With -cluster-nodes, classified documents route across the listed
// remote store nodes (replication 2 by default) instead of an embedded
// store, and the HTTP API scatter-gathers queries across them; the
// /views dashboard reads an embedded store and is disabled in this mode:
//
//	collector -cluster-nodes http://10.0.0.1:9200,http://10.0.0.2:9200 -replication 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"hetsyslog/internal/cluster"
	"hetsyslog/internal/collector"
	"hetsyslog/internal/core"
	"hetsyslog/internal/detect"
	"hetsyslog/internal/llm"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/obs"
	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
	"hetsyslog/internal/taxonomy"
)

func main() {
	var (
		udpAddr     = flag.String("udp", ":5514", "syslog UDP listen address")
		tcpAddr     = flag.String("tcp", ":5514", "syslog TCP listen address")
		httpAddr    = flag.String("http", ":9200", "store HTTP API address")
		modelName   = flag.String("model", "Complement Naive Bayes", "classifier to deploy")
		scale       = flag.Int("train-scale", 20000, "training corpus size")
		seed        = flag.Int64("seed", 1, "training seed")
		cooldown    = flag.Duration("cooldown", time.Minute, "per-category alert cooldown")
		shards      = flag.Int("shards", 6, "store shard count")
		blacklist   = flag.String("blacklist", "", "file of noise exemplars to drop pre-classification (one per line, §5.1)")
		workers     = flag.Int("workers", 0, "classification goroutines per batch (0 = GOMAXPROCS)")
		flushers    = flag.Int("flush-workers", 1, "concurrent pipeline flushers (batches in flight)")
		metricsAddr = flag.String("metrics-addr", "", "dedicated listen address serving /metrics and /debug/pprof (empty disables)")
		cacheOn     = flag.Bool("classify-cache", true, "cache classifications of repeated/templated messages (disable when retraining the model in place)")
		cacheSize   = flag.Int("classify-cache-size", core.DefaultCacheSize, "classify cache entries per level")
		cacheShards = flag.Int("classify-cache-shards", core.DefaultCacheShards, "classify cache shard count (rounded up to a power of two)")
		spoolDir    = flag.String("spool-dir", "", "directory for the disk spill queue: batches the sink refuses spool here and replay on recovery (empty disables)")
		spoolMax    = flag.Int64("spool-max-bytes", 0, "spool size bound; oldest segment evicted past it (0 = unbounded)")
		writeTO     = flag.Duration("write-timeout", 0, "per-attempt sink write timeout (0 = default 30s)")
		breakerThr  = flag.Int("breaker-threshold", 0, "consecutive failed writes that trip the sink circuit breaker (0 = default 5)")
		ingestBatch = flag.Int("ingest-batch", 0, "max syslog messages per listener read-loop batch handed to the pipeline (0 = default 256)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file at clean shutdown (empty disables)")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file at clean shutdown (empty disables)")
		gcPercent   = flag.Int("gc-percent", 0, "runtime GC target percentage (debug.SetGCPercent; 0 keeps the Go default of 100). With the store's arena-backed corpus the live heap is mostly pointer-free slabs, so higher values trade memory headroom for fewer GC cycles")

		detectOn  = flag.Bool("detect", false, "enable the streaming security detectors (rate spikes + sensitive patterns) as a pipeline stage")
		detectWin = flag.Duration("detect-window", 0, "detector sliding window and per-source alert cooldown (0 = default 1m)")
		detectZ   = flag.Float64("detect-zscore", 0, "rate-spike threshold in decayed standard deviations (0 = default 3)")
		detectMax = flag.Int("detect-max-sources", 0, "tracked detector sources before idlest-entry eviction (0 = default 1<<20)")

		clusterNodes = flag.String("cluster-nodes", "", "comma-separated store node base URLs; non-empty indexes classified documents across them instead of an embedded store (dashboard views are single-node-only and are disabled)")
		replication  = flag.Int("replication", 0, "copies of each document across cluster nodes (0 = default 2)")
		partitions   = flag.Int("partitions", 0, "hash partitions for cluster placement (0 = default 32; pick once per cluster)")
		timeSlice    = flag.Duration("time-slice", 0, "time bucket mixed into cluster routing so hosts spread over nodes (0 = default 1h)")
		clusterCodec = flag.String("cluster-codec", "", "wire codec for node index batches: binary (default, falls back to json per node) or json")
		queryCache   = flag.Int("query-cache-size", 0, "coordinator merged-result cache entries for count/datehist/terms (0 = default 256, negative disables)")
	)
	flag.Parse()

	if *gcPercent > 0 {
		debug.SetGCPercent(*gcPercent)
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	// Train the deployed model.
	fmt.Fprintf(os.Stderr, "collector: training %s on %d synthetic messages...\n", *modelName, *scale)
	g := loggen.NewGenerator(*seed)
	examples, err := g.Dataset(loggen.ScaledPaperCounts(*scale))
	if err != nil {
		fatal(err)
	}
	model, err := core.NewModel(*modelName)
	if err != nil {
		fatal(err)
	}
	tc, err := core.Train(model, core.FromExamples(examples), core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "collector: trained in %v (%d features)\n",
		tc.TrainTime.Round(time.Millisecond), tc.Vectorizer.Dims())

	reg := obs.NewRegistry()
	obs.RegisterRuntimeMemStats(reg)
	// Storage backend: an embedded store by default, or — in cluster mode —
	// a router spreading classified documents across remote store nodes
	// through the service's Indexer seam.
	var st *store.Store
	var router *cluster.Router
	var coord *cluster.Coordinator
	if *clusterNodes != "" {
		var nodes []string
		for _, n := range strings.Split(*clusterNodes, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
		ccfg := cluster.Config{
			Nodes:            nodes,
			Replication:      *replication,
			Partitions:       *partitions,
			TimeSlice:        *timeSlice,
			SpoolDir:         *spoolDir,
			SpoolMaxBytes:    *spoolMax,
			BreakerThreshold: *breakerThr,
			Codec:            *clusterCodec,
			QueryCacheSize:   *queryCache,
			// Shared ingest generation: router deliveries invalidate the
			// coordinator's cached aggregates.
			Gen: cluster.NewGeneration(),
		}
		if router, err = cluster.NewRouter(ccfg, reg); err != nil {
			fatal(err)
		}
		if coord, err = cluster.NewCoordinator(ccfg, reg); err != nil {
			fatal(err)
		}
	} else {
		st = store.New(*shards)
		st.Instrument(reg)
	}
	alerts := &monitor.AlertManager{
		Cooldown: *cooldown,
		Notifier: monitor.NotifierFunc(func(a monitor.Alert) {
			fmt.Println("ALERT", a)
		}),
	}
	svc := &core.Service{Classifier: tc, Alerts: alerts, Workers: *workers, Metrics: reg}
	if router != nil {
		svc.Indexer = router
	} else {
		svc.Store = st
	}
	if *cacheOn {
		svc.Cache = core.NewClassifyCache(*cacheShards, *cacheSize)
	}

	// Topology enrichment from the simulated cluster (in a real
	// deployment this reads the site inventory).
	topo := g.Cluster
	enrich := collector.TopologyEnricher(func(host string) (string, string, bool) {
		n, ok := topo.Lookup(host)
		if !ok {
			return "", "", false
		}
		return fmt.Sprintf("r%d", n.Rack), string(n.Arch), true
	})

	dedup := collector.NewDedup(time.Second)
	dedup.Metrics = reg
	filters := []collector.Filter{dedup, enrich}
	if *blacklist != "" {
		nf := core.NewNoiseFilter(0)
		data, err := os.ReadFile(*blacklist)
		if err != nil {
			fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				nf.Blacklist(line)
			}
		}
		fmt.Fprintf(os.Stderr, "collector: %d noise exemplars blacklisted\n", nf.Exemplars())
		filters = append(filters, nf)
	}

	src := collector.NewSyslogSource(*udpAddr, *tcpAddr)
	src.MaxBatch = *ingestBatch
	src.Metrics = reg
	pipeCfg := &collector.Config{
		FlushWorkers:     *flushers,
		SpoolDir:         *spoolDir,
		SpoolMaxBytes:    *spoolMax,
		WriteTimeout:     *writeTO,
		BreakerThreshold: *breakerThr,
	}
	if router != nil {
		// In cluster mode durability lives in the router's per-node
		// breakers and spools; a second pipeline-level spool would replay
		// records back through classification for no added safety.
		pipeCfg.SpoolDir, pipeCfg.SpoolMaxBytes = "", 0
	}
	if err := pipeCfg.Validate(); err != nil {
		fatal(err)
	}
	// Streaming detectors run as a pipeline stage after dedup/enrichment:
	// attack traffic varies per line, so dedup passes it through, and the
	// detectors key rate baselines on the same cached classifier the sink
	// applies. Their synthetic alerts flow downstream into the store.
	var det *detect.Detector
	if *detectOn {
		det, err = detect.New(detect.Config{
			Window:     *detectWin,
			ZScore:     *detectZ,
			MaxSources: *detectMax,
			Classify:   svc.CategoryOf,
			Alerts:     alerts,
			Metrics:    reg,
		})
		if err != nil {
			fatal(err)
		}
	}

	pipe := &collector.Pipeline{
		Source: src,
		// rsyslog-style dedup in front of classification keeps identical
		// message storms from flooding the store; the optional blacklist
		// drops administrator-listed noise before classification (§5.1).
		Filters: filters,
		Sink:    svc,
		Config:  pipeCfg,
		Metrics: reg,
		// Every retention point downstream deep-copies what it keeps (the
		// store copies into arenas, dedup/detectors/caches clone on insert),
		// so leased syslog buffers are recycled the moment the pipeline is
		// done with a record — the zero-garbage ingest fast path.
		Release: func(r collector.Record) { syslog.Recycle(r.Msg) },
	}
	if det != nil {
		pipe.Stages = []collector.Stage{det}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if router != nil {
		router.Start(ctx)
	}

	// One HTTP surface: store API at the root (the scatter-gather
	// coordinator in cluster mode), dashboard views at /views/..., LLM
	// status summaries at /views/summary. The /views surfaces read the
	// embedded store directly, so they are single-node-only.
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /alerts", alerts.ServeAlerts)
	if det != nil {
		mux.HandleFunc("GET /detect/state", det.ServeState)
	}
	if router != nil {
		mux.Handle("/", coord.Handler())
		mux.HandleFunc("GET /cluster/nodes", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(router.Stats())
		})
	} else {
		mux.Handle("/", st.Handler())
		dash := &monitor.Dashboard{
			Store: st,
			Archs: func(arch string) (int, bool) {
				n := len(topo.NodesWithArch(loggen.Arch(arch)))
				return n, n > 0
			},
		}
		mux.Handle("/views/", dash.Handler())
		summarizer := llm.NewSummarizer(llm.Falcon40B(), llm.A100Node(), *seed)
		mux.HandleFunc("GET /views/summary", func(w http.ResponseWriter, r *http.Request) {
			text, latency := summarizer.SummarizeSystem(nodeStatuses(st))
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"summary\": %q, \"modelled_latency_sec\": %.3f}\n",
				text, latency.Seconds())
		})
	}

	errCh := make(chan error, 2)
	go func() { errCh <- pipe.Run(ctx) }()
	httpSrv := &http.Server{Addr: *httpAddr, Handler: mux}
	go func() { errCh <- httpSrv.ListenAndServe() }()
	if *metricsAddr != "" {
		go func() { errCh <- serveObs(*metricsAddr, reg) }()
	}
	go func() {
		<-src.Ready()
		fmt.Fprintf(os.Stderr, "collector: syslog udp=%s tcp=%s, store http=%s\n",
			src.BoundUDP, src.BoundTCP, *httpAddr)
	}()

	select {
	case <-ctx.Done():
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
	classified, actionable := svc.Counts()
	sent, muted := alerts.Counts()
	backend := "cluster"
	if st != nil {
		backend = st.String()
	}
	fmt.Fprintf(os.Stderr, "\ncollector: classified=%d actionable=%d alerts sent=%d muted=%d; %s\n",
		classified, actionable, sent, muted, backend)
	if det != nil {
		for _, dc := range det.State(0).Detectors {
			if dc.Fired > 0 || dc.Suppressed > 0 {
				fmt.Fprintf(os.Stderr, "collector: detector %s fired=%d suppressed=%d\n",
					dc.Detector, dc.Fired, dc.Suppressed)
			}
		}
	}
	if ps := pipe.Stats(); ps.Spooled > 0 {
		fmt.Fprintf(os.Stderr, "collector: %d records spooled in %s await replay on next start\n",
			ps.Spooled, *spoolDir)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	if router != nil {
		if err := router.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "collector: router close:", err)
		}
		for i, ns := range router.Stats() {
			if ns.SpoolRecords > 0 {
				fmt.Fprintf(os.Stderr, "collector: node %d (%s): %d records spooled await replay on next start\n",
					i, ns.URL, ns.SpoolRecords)
			}
		}
	}
}

// nodeStatuses aggregates per-node per-category counts from the store for
// the summarizer.
func nodeStatuses(st *store.Store) []llm.NodeStatus {
	var out []llm.NodeStatus
	for _, nb := range st.Terms(store.MatchAll{}, "hostname", 0) {
		ns := llm.NodeStatus{Node: nb.Value, Counts: map[taxonomy.Category]int{}}
		nodeQ := store.Term{Field: "hostname", Value: nb.Value}
		for _, cb := range st.Terms(nodeQ, "category", 0) {
			ns.Counts[taxonomy.Category(cb.Value)] = cb.Count
		}
		out = append(out, ns)
	}
	return out
}

// serveObs runs the dedicated observability endpoint: Prometheus scrapes
// at /metrics plus the pprof profiling surface, kept off the main API
// address so profiling is never exposed alongside the public port.
func serveObs(addr string, reg *obs.Registry) error {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return (&http.Server{Addr: addr, Handler: mux}).ListenAndServe()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "collector:", err)
	os.Exit(1)
}
