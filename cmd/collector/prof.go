package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles begins file-based profiling for headless runs (benchmark
// boxes, CI) where the /debug/pprof HTTP surface on -metrics-addr is
// awkward to reach. A non-empty cpuPath starts a CPU profile immediately;
// the returned stop flushes it and, when memPath is set, writes an
// allocation profile. Profiles are written on clean shutdown only — a
// fatal startup error exits without them.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "profile: cpu written to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profile:", err)
				return
			}
			runtime.GC() // flush unreachable objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profile:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "profile: heap written to %s\n", memPath)
		}
	}, nil
}
