// Command loggen emits synthetic heterogeneous-cluster syslog, either to
// stdout or to a syslog server over UDP/TCP — the workload driver standing
// in for the Darwin test-bed (DESIGN.md §2).
//
// Usage:
//
//	loggen -n 100                       # print 100 labelled messages
//	loggen -n 0 -rate 10ms -send udp:127.0.0.1:5514   # stream forever
//	loggen -dataset 20000               # dump a scaled Table 2 corpus as TSV
//	loggen -attack spray -n 20          # scripted attack shape (burst|spray|scan)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetsyslog/internal/core"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/syslog"
)

func main() {
	var (
		n       = flag.Int("n", 100, "number of messages (0 = unlimited stream)")
		rate    = flag.Duration("rate", 0, "inter-message delay (0 = full speed)")
		seed    = flag.Int64("seed", 1, "generator seed")
		send    = flag.String("send", "", "forward as syslog to net:addr, e.g. udp:127.0.0.1:5514")
		dataset = flag.Int("dataset", 0, "emit a unique-message corpus of ~this size as TSV and exit")
		replay  = flag.String("replay", "", "replay a TSV corpus file instead of generating")
		drift   = flag.Bool("drift", false, "apply a firmware update to every architecture halfway through")

		attack       = flag.String("attack", "", "emit one scripted attack shape instead of the normal mix: burst, spray, or scan")
		attackWindow = flag.Duration("attack-window", 30*time.Second, "time window the scripted attack spans")
	)
	flag.Parse()

	g := loggen.NewGenerator(*seed)

	if *attack != "" {
		if err := runAttack(g, loggen.AttackKind(*attack), *n, *attackWindow, *send, *rate); err != nil {
			fmt.Fprintln(os.Stderr, "loggen:", err)
			os.Exit(1)
		}
		return
	}

	if *replay != "" {
		if err := replayTSV(*replay, *send, *rate); err != nil {
			fmt.Fprintln(os.Stderr, "loggen:", err)
			os.Exit(1)
		}
		return
	}

	if *dataset > 0 {
		examples, err := g.Dataset(loggen.ScaledPaperCounts(*dataset))
		if err != nil {
			fmt.Fprintln(os.Stderr, "loggen:", err)
			os.Exit(1)
		}
		for _, ex := range examples {
			fmt.Printf("%s\t%s\t%s\t%s\n", ex.Category, ex.Node.Name, ex.Node.Arch, ex.Text)
		}
		return
	}

	var sender *syslog.Sender
	if *send != "" {
		parts := strings.SplitN(*send, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "loggen: -send wants net:addr")
			os.Exit(1)
		}
		var err error
		sender, err = syslog.DialSender(parts[0], parts[1], syslog.FormatRFC5424)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loggen:", err)
			os.Exit(1)
		}
		defer sender.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	emitted := 0
	for *n == 0 || emitted < *n {
		select {
		case <-ctx.Done():
			return
		default:
		}
		if *drift && *n > 0 && emitted == *n/2 {
			for _, a := range loggen.Arches() {
				g.ApplyFirmwareUpdate(a)
			}
			fmt.Fprintln(os.Stderr, "loggen: firmware updated on all architectures")
		}
		ex := g.Example()
		if sender != nil {
			if err := sender.Send(ex.Message()); err != nil {
				fmt.Fprintln(os.Stderr, "loggen: send:", err)
				os.Exit(1)
			}
		} else {
			fmt.Printf("[%-19s] %s %s: %s\n", ex.Category, ex.Node.Name, ex.App, ex.Text)
		}
		emitted++
		if *rate > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(*rate):
			}
		}
	}
}

// runAttack scripts one adversarial traffic shape against a random node
// and prints it or forwards it as syslog — the workload the streaming
// detectors and their end-to-end tests consume.
func runAttack(g *loggen.Generator, kind loggen.AttackKind, n int, window time.Duration, send string, rate time.Duration) error {
	target := g.Cluster.Nodes[0]
	examples, err := g.Attack(kind, target, n, window)
	if err != nil {
		return err
	}
	var sender *syslog.Sender
	if send != "" {
		parts := strings.SplitN(send, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-send wants net:addr")
		}
		sender, err = syslog.DialSender(parts[0], parts[1], syslog.FormatRFC5424)
		if err != nil {
			return err
		}
		defer sender.Close()
	}
	for _, ex := range examples {
		if sender != nil {
			if err := sender.Send(ex.Message()); err != nil {
				return err
			}
		} else {
			fmt.Printf("[%-19s] %s %s: %s\n", ex.Category, ex.Node.Name, ex.App, ex.Text)
		}
		if rate > 0 {
			time.Sleep(rate)
		}
	}
	fmt.Fprintf(os.Stderr, "loggen: %s attack of %d messages against %s over %v\n",
		kind, len(examples), target.Name, window)
	return nil
}

// replayTSV reads a cmd/loggen -dataset style TSV and either prints it or
// replays it as syslog toward -send.
func replayTSV(path, send string, rate time.Duration) error {
	corpus, err := core.ReadCorpusTSVFile(path)
	if err != nil {
		return err
	}
	var sender *syslog.Sender
	if send != "" {
		parts := strings.SplitN(send, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-send wants net:addr")
		}
		sender, err = syslog.DialSender(parts[0], parts[1], syslog.FormatRFC5424)
		if err != nil {
			return err
		}
		defer sender.Close()
	}
	now := time.Now()
	for i, text := range corpus.Texts {
		if sender != nil {
			m := &syslog.Message{
				Facility: syslog.Daemon, Severity: syslog.Info,
				Timestamp: now, Hostname: "replay", AppName: "loggen",
				Content: text,
			}
			if err := sender.Send(m); err != nil {
				return err
			}
		} else {
			fmt.Printf("[%-19s] %s\n", corpus.Labels[i], text)
		}
		if rate > 0 {
			time.Sleep(rate)
		}
	}
	return nil
}
