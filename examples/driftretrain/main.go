// Drift & retrain: the operational lifecycle the paper motivates. A model
// is trained and deployed; a fleet-wide firmware update rewords messages;
// the bucketing baseline starts opening unlabelled buckets (administrator
// labelling debt) while the classifier degrades only slightly; finally the
// triage queue is used to label the few new exemplars, the corpus is
// extended, and the model is retrained — demonstrating why the ML pipeline
// is cheap to maintain where edit-distance bucketing was not (§3, §7).
//
//	go run ./examples/driftretrain
package main

import (
	"fmt"
	"log"

	"hetsyslog/internal/bucket"
	"hetsyslog/internal/core"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/taxonomy"
)

func accuracy(tc *core.TextClassifier, c *core.Corpus) float64 {
	correct := 0
	for i, text := range c.Texts {
		if tc.Classify(text) == c.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(c.Len())
}

func sample(g *loggen.Generator, n int) *core.Corpus {
	out := &core.Corpus{}
	for i := 0; i < n; i++ {
		ex := g.Example()
		out.Append(ex.Text, string(ex.Category))
	}
	return out
}

func main() {
	gen := loggen.NewGenerator(33)

	// --- Initial training, exactly as on Darwin: bucket a year of
	// traffic, label the exemplars, train the classifier. ---
	examples, err := gen.Dataset(loggen.ScaledPaperCounts(6000))
	if err != nil {
		log.Fatal(err)
	}
	corpus := core.FromExamples(examples)

	bk := bucket.NewBucketer()
	labelled := 0
	for i, text := range corpus.Texts {
		b, _ := bk.Assign(text)
		if !b.Labeled() {
			bk.Label(b.ID, taxonomy.Category(corpus.Labels[i]))
			labelled++
		}
	}
	fmt.Printf("initial corpus: %d messages covered by %d labelled buckets (%.1f%% labelling effort)\n",
		corpus.Len(), labelled, 100*float64(labelled)/float64(corpus.Len()))

	model, _ := core.NewModel("Complement Naive Bayes")
	clf, err := core.Train(model, corpus, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	pre := sample(gen, 1000)
	fmt.Printf("\npre-drift:  classifier accuracy %.3f, bucket coverage %.1f%%\n",
		accuracy(clf, pre), 100*coverage(bk, pre))

	// --- The drift event. ---
	for _, a := range loggen.Arches() {
		gen.ApplyFirmwareUpdate(a)
	}
	fmt.Println("\n*** firmware update applied to every architecture ***")

	post := sample(gen, 1000)
	fmt.Printf("post-drift: classifier accuracy %.3f, bucket coverage %.1f%%\n",
		accuracy(clf, post), 100*coverage(bk, post))

	// --- The old maintenance loop: route drifted traffic through the
	// bucketer and inspect the triage queue. ---
	for _, text := range post.Texts {
		bk.Assign(text)
	}
	queue := bk.Unlabeled()
	fmt.Printf("\ntriage queue after drift: %d new unlabelled buckets; top exemplars:\n", len(queue))
	for i, b := range queue {
		if i == 3 {
			break
		}
		fmt.Printf("  [%3d msgs] %s\n", b.Count, b.Exemplar)
	}

	// --- The cheap fix: label the queue (an administrator pass), extend
	// the corpus with the newly covered messages, retrain. ---
	relabelled := 0
	for _, b := range queue {
		// In production an administrator answers; here the classifier's
		// own (still mostly correct) prediction plays that role.
		bk.Label(b.ID, clf.ClassifyCategory(b.Exemplar))
		relabelled++
	}
	extended := &core.Corpus{
		Texts:  append(append([]string{}, corpus.Texts...), post.Texts...),
		Labels: append(append([]string{}, corpus.Labels...), post.Labels...),
	}
	model2, _ := core.NewModel("Complement Naive Bayes")
	clf2, err := core.Train(model2, extended, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	post2 := sample(gen, 1000)
	fmt.Printf("\nafter relabelling %d buckets and retraining on %d messages:\n",
		relabelled, extended.Len())
	fmt.Printf("  classifier accuracy %.3f, bucket coverage %.1f%%\n",
		accuracy(clf2, post2), 100*coverage(bk, post2))
}

func coverage(bk *bucket.Bucketer, c *core.Corpus) float64 {
	covered := 0
	for _, text := range c.Texts {
		if cat, ok := bk.Peek(text); ok && cat != "" {
			covered++
		}
	}
	return float64(covered) / float64(c.Len())
}
