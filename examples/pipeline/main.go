// Pipeline: the full deployed system end to end, over real sockets —
// generator nodes emit syslog over TCP, a relay forwards to the collector,
// the collector enriches with rack/arch topology, the trained classifier
// labels each message, everything lands in the Tivan store, and actionable
// categories raise alerts. Afterwards the store is queried the way the
// Grafana dashboards of §4.2 would.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/core"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
	"hetsyslog/internal/taxonomy"
)

func main() {
	// --- Train the classifier offline (the paper's year of labelled data,
	// compressed into a synthetic corpus). ---
	gen := loggen.NewGenerator(7)
	examples, err := gen.Dataset(loggen.ScaledPaperCounts(5000))
	if err != nil {
		log.Fatal(err)
	}
	model, _ := core.NewModel("Logistic Regression")
	clf, err := core.Train(model, core.FromExamples(examples), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s in %v\n", model.Name(), clf.TrainTime.Round(time.Millisecond))

	// --- Stand up the service: store + alerts + classification sink. ---
	st := store.New(4)
	alertCount := 0
	alerts := &monitor.AlertManager{
		Cooldown: 500 * time.Millisecond,
		Notifier: monitor.NotifierFunc(func(a monitor.Alert) {
			alertCount++
			if alertCount <= 5 {
				fmt.Println("ALERT", a)
			}
		}),
	}
	svc := &core.Service{Classifier: clf, Store: st, Alerts: alerts}

	cluster := gen.Cluster
	enrich := collector.TopologyEnricher(func(host string) (string, string, bool) {
		n, ok := cluster.Lookup(host)
		if !ok {
			return "", "", false
		}
		return fmt.Sprintf("r%d", n.Rack), string(n.Arch), true
	})

	src := collector.NewSyslogSource("", "127.0.0.1:0")
	pipe := &collector.Pipeline{
		Source:    src,
		Filters:   []collector.Filter{enrich},
		Sink:      svc,
		BatchSize: 32, FlushInterval: 20 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pipeDone := make(chan error, 1)
	go func() { pipeDone <- pipe.Run(ctx) }()
	<-src.Ready()

	// --- A relay in front (the primary syslog server of §4.2.2). ---
	downstream, err := syslog.DialSender("tcp", src.BoundTCP, syslog.FormatRFC5424)
	if err != nil {
		log.Fatal(err)
	}
	relay := syslog.NewRelay(downstream)
	relayAddr, err := relay.Server().ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer relay.Close()

	// --- "Compute nodes" send 2000 messages through the relay. ---
	nodeSender, err := syslog.DialSender("tcp", relayAddr.String(), syslog.FormatRFC5424)
	if err != nil {
		log.Fatal(err)
	}
	defer nodeSender.Close()
	const total = 2000
	for i := 0; i < total; i++ {
		ex := gen.Example()
		if err := nodeSender.Send(ex.Message()); err != nil {
			log.Fatal(err)
		}
	}

	// Wait for the stream to drain (UDP may drop a few under burst).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c, _ := svc.Counts(); c >= total {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	if err := <-pipeDone; err != nil {
		log.Fatal(err)
	}

	classified, actionable := svc.Counts()
	sent, muted := alerts.Counts()
	fmt.Printf("\nclassified=%d actionable=%d alerts sent=%d muted=%d\n",
		classified, actionable, sent, muted)
	fmt.Println(st)

	// --- Dashboard-style queries (§4.2, §4.5.1). ---
	fmt.Println("\nmessages per category:")
	for _, b := range st.Terms(store.MatchAll{}, "category", 0) {
		fmt.Printf("  %-20s %d\n", b.Value, b.Count)
	}
	fmt.Println("\nnoisiest nodes for Thermal Issue:")
	for _, b := range st.Terms(monitor.CategoryQuery(taxonomy.ThermalIssue), "hostname", 3) {
		fmt.Printf("  %-8s %d\n", b.Value, b.Count)
	}
	fmt.Println("\nper-architecture volume:")
	for _, b := range st.Terms(store.MatchAll{}, "arch", 0) {
		fmt.Printf("  %-22s %d\n", b.Value, b.Count)
	}
}
