// Quickstart: train a classifier on a synthetic heterogeneous-cluster
// corpus and classify a handful of raw syslog messages.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetsyslog/internal/core"
	"hetsyslog/internal/loggen"
)

func main() {
	// 1. Generate a labelled corpus shaped like the paper's Table 2
	//    (same class imbalance, ~5k unique messages).
	gen := loggen.NewGenerator(42)
	examples, err := gen.Dataset(loggen.ScaledPaperCounts(5000))
	if err != nil {
		log.Fatal(err)
	}
	corpus := core.FromExamples(examples)
	fmt.Printf("corpus: %d unique labelled messages\n", corpus.Len())

	// 2. Train one of the paper's eight classifiers.
	model, err := core.NewModel("Complement Naive Bayes")
	if err != nil {
		log.Fatal(err)
	}
	clf, err := core.Train(model, corpus, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s in %v (%d TF-IDF features)\n\n",
		model.Name(), clf.TrainTime.Round(1e6), clf.Vectorizer.Dims())

	// 3. Classify raw messages, including phrasings from "vendors" the
	//    training templates never produced verbatim.
	messages := []string{
		"Warning: Socket 2 - CPU 23 throttling",
		"CPU 1 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C",
		"error: Node cn101 has low real_memory size (190000 < 256000)",
		"Connection closed by 10.3.7.21 port 50112 [preauth]",
		"usb 3-2: new high-speed USB device number 9 using xhci_hcd",
		"slurmd version 23.02.1 differs from slurmctld, please update slurm on node cn077",
		"New session 812 of user root started on seat0 after boot",
		"lpi_hbm_nn: job_argument 8837193 processed, error code 0, 512 tensors in 48223 usec",
	}
	for _, msg := range messages {
		fmt.Printf("%-19s <- %s\n", clf.Classify(msg), msg)
	}
}
