// Monitoring: the three §4.5 analyses on a simulated incident timeline —
// someone leaves the cold-aisle door open and one rack overheats, one node
// develops a memory fault, and a whole architecture reports a bogus fan
// reading after a firmware update.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"time"

	"hetsyslog/internal/core"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/monitor"
	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

func main() {
	gen := loggen.NewGenerator(21)
	trainEx, err := gen.Dataset(loggen.ScaledPaperCounts(4000))
	if err != nil {
		log.Fatal(err)
	}
	model, _ := core.NewModel("Complement Naive Bayes")
	clf, err := core.Train(model, core.FromExamples(trainEx), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	st := store.New(4)
	index := func(ex loggen.Example) {
		cat := clf.ClassifyCategory(ex.Text)
		st.Index(store.Doc{
			Time: ex.Time,
			Fields: store.F(
				"hostname", ex.Node.Name,
				"app", ex.App,
				"rack", fmt.Sprintf("r%d", ex.Node.Rack),
				"arch", string(ex.Node.Arch),
				"category", string(cat),
			),
			Body: ex.Text,
		})
	}

	// --- Background traffic: 30 minutes of normal chatter. ---
	for i := 0; i < 600; i++ {
		ex := gen.Example()
		index(ex)
		gen.Advance(time.Second)
	}

	// --- Incident 1 (§4.5.1): cold-aisle door open, rack 2 overheats. ---
	rack2 := gen.Cluster.NodesInRack(2)
	for _, node := range rack2[:4] {
		for _, ex := range gen.Burst(taxonomy.ThermalIssue, node, 80, 20*time.Second) {
			index(ex)
		}
	}

	// --- Incident 2: one node spews memory errors. ---
	badNode := gen.Cluster.Nodes[37]
	for _, ex := range gen.Burst(taxonomy.MemoryIssue, badNode, 60, time.Minute) {
		index(ex)
	}

	// --- Incident 3 (§4.5.3): every cavium node reports the same missing
	// fan after a firmware update — a false indication. ---
	cavium := gen.Cluster.NodesWithArch(loggen.ARMCav)
	for _, node := range cavium {
		ex := loggen.Example{
			Text: "Fan 3 speed reading absent on system board, hardware event timestamp 99120",
			Node: node, App: "ipmiseld", Time: gen.Now(),
		}
		index(ex)
	}

	// =========== The three monitoring views ===========

	fmt.Println("== Frequency / temporal analysis (§4.5.1) ==")
	rep := monitor.Frequency(st, store.MatchAll{}, time.Minute, 3, 30)
	fmt.Printf("volume: %s\n", monitor.Sparkline(rep.Buckets))
	fmt.Printf("%d histogram buckets, %d surge(s) detected\n", len(rep.Buckets), len(rep.Surges))
	for _, s := range rep.Surges {
		fmt.Printf("  surge at %s: %d msgs (%.1fx baseline)\n",
			s.Start.Format("15:04"), s.Count, s.Factor)
	}
	fmt.Println("  noisiest nodes in surge window:")
	fmt.Print(monitor.RenderTerms(rep.TopNodes, 24))

	fmt.Println("\n== Positional analysis (§4.5.2) ==")
	racks := monitor.BusiestRacks(monitor.Positional(st, monitor.CategoryQuery(taxonomy.ThermalIssue)), 3)
	for _, r := range racks {
		fmt.Printf("  rack %-4s thermal msgs=%-5d nodes reporting=%d\n",
			r.Rack, r.Total, r.NodesReporting)
	}
	if len(racks) > 0 && racks[0].NodesReporting > 1 {
		fmt.Printf("  -> rack %s is hot across %d nodes: check the cold aisle, not the nodes\n",
			racks[0].Rack, racks[0].NodesReporting)
	}

	fmt.Println("\n== Per-architecture analysis (§4.5.3) ==")
	fanQ := store.Match{Text: "Fan 3 speed reading absent"}
	v := monitor.PerArch(st, fanQ, string(loggen.ARMCav), len(cavium), 0.8)
	fmt.Printf("  %q reported by %d/%d %s nodes -> likely false indication: %v\n",
		"Fan 3 reading absent", v.NodesReporting, v.NodesTotal, v.Arch, v.LikelyFalseIndication)
	memQ := monitor.CategoryQuery(taxonomy.MemoryIssue)
	badArch := string(badNode.Arch)
	archTotal := len(gen.Cluster.NodesWithArch(badNode.Arch))
	v2 := monitor.PerArch(st, memQ, badArch, archTotal, 0.8)
	fmt.Printf("  memory errors reported by %d/%d %s nodes -> likely false indication: %v\n",
		v2.NodesReporting, v2.NodesTotal, v2.Arch, v2.LikelyFalseIndication)
	fmt.Printf("  -> %s alone is erroring: drain it and run memory diagnostics\n", badNode.Name)
}
