// LLM comparison: classify the same message stream three ways — a trained
// traditional model, simulated generative LLMs (Falcon-7b/40b with the
// paper's failure modes), and simulated zero-shot (bart-large-mnli) — then
// compare accuracy, alignment failures and per-message cost (§5, Table 3).
//
//	go run ./examples/llmcompare
package main

import (
	"fmt"
	"log"
	"time"

	"hetsyslog/internal/core"
	"hetsyslog/internal/llm"
	"hetsyslog/internal/loggen"
)

func main() {
	gen := loggen.NewGenerator(11)
	trainEx, err := gen.Dataset(loggen.ScaledPaperCounts(4000))
	if err != nil {
		log.Fatal(err)
	}
	corpus := core.FromExamples(trainEx)
	train, test := corpus.Split(0.1, 1)

	// Traditional path.
	model, _ := core.NewModel("Complement Naive Bayes")
	clf, err := core.Train(model, train, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// LLM paths.
	hw := llm.A100Node()
	prompt := llm.DefaultPrompt()
	f7 := llm.NewGenerative(llm.Falcon7B(), hw, llm.Falcon7BFailures(), 3)
	f7.MaxNewTokens = 64
	f40 := llm.NewGenerative(llm.Falcon40B(), hw, llm.Falcon40BFailures(), 3)
	f40.MaxNewTokens = 64
	zs := llm.NewZeroShot()

	const n = 300
	type tally struct {
		correct, invented int
		simCost           time.Duration
		wallCost          time.Duration
	}
	var tTrad, t7, t40, tZS tally

	for i := 0; i < n && i < test.Len(); i++ {
		msg, want := test.Texts[i], test.Labels[i]

		start := time.Now()
		got := clf.Classify(msg)
		tTrad.wallCost += time.Since(start)
		tTrad.simCost = tTrad.wallCost // real cost: it actually runs
		if got == want {
			tTrad.correct++
		}

		r7 := f7.Classify(msg, prompt)
		t7.simCost += r7.Latency
		if !r7.ParseOK {
			t7.invented++
		} else if string(r7.Category) == want {
			t7.correct++
		}

		r40 := f40.Classify(msg, prompt)
		t40.simCost += r40.Latency
		if !r40.ParseOK {
			t40.invented++
		} else if string(r40.Category) == want {
			t40.correct++
		}

		zc, zlat := zs.Top(msg)
		tZS.simCost += zlat
		if string(zc) == want {
			tZS.correct++
		}
	}

	fmt.Printf("%d test messages\n\n", n)
	fmt.Printf("%-26s %9s %9s %14s %11s\n", "Classifier", "Correct", "Invented", "Cost/msg", "Msgs/hour")
	row := func(name string, t tally, simulated bool) {
		per := t.simCost / n
		note := ""
		if simulated {
			note = " (modelled)"
		}
		fmt.Printf("%-26s %8.1f%% %9d %11v%s %9d\n",
			name, 100*float64(t.correct)/n, t.invented, per.Round(time.Microsecond), note,
			llm.MessagesPerHour(per))
	}
	row(model.Name(), tTrad, false)
	row("Falcon-7b (sim)", t7, true)
	row("Falcon-40b (sim)", t40, true)
	row("bart-large-mnli (sim)", tZS, true)

	// Figure 1: the explainability upside the paper wants to keep.
	fmt.Println("\nFigure 1 style explanation from the generative model:")
	fmt.Println(f40.Explain("Warning: Socket 2 - CPU 23 throttling", prompt))
}
