// Summarize: the paper's §7 future-work use-cases for LLMs — cluster
// status summaries, per-node explanations, and drafted replies to admin
// email — where per-message cost no longer matters because the tasks are
// low-frequency. Everything is grounded in classified log data pulled
// from the Tivan store.
//
//	go run ./examples/summarize
package main

import (
	"fmt"
	"log"
	"time"

	"hetsyslog/internal/core"
	"hetsyslog/internal/llm"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/store"
	"hetsyslog/internal/taxonomy"
)

func main() {
	// Train and classify a day of traffic into the store.
	gen := loggen.NewGenerator(55)
	examples, err := gen.Dataset(loggen.ScaledPaperCounts(4000))
	if err != nil {
		log.Fatal(err)
	}
	model, _ := core.NewModel("Complement Naive Bayes")
	clf, err := core.Train(model, core.FromExamples(examples), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	st := store.New(4)
	for i := 0; i < 3000; i++ {
		ex := gen.Example()
		st.Index(store.Doc{
			Time: ex.Time,
			Fields: store.F(
				"hostname", ex.Node.Name,
				"category", string(clf.ClassifyCategory(ex.Text)),
			),
			Body: ex.Text,
		})
	}
	// Plus a concentrated memory problem on one node.
	bad := gen.Cluster.Nodes[11]
	for _, ex := range gen.Burst(taxonomy.MemoryIssue, bad, 40, time.Minute) {
		st.Index(store.Doc{
			Time: ex.Time,
			Fields: store.F(
				"hostname", ex.Node.Name,
				"category", string(clf.ClassifyCategory(ex.Text)),
			),
			Body: ex.Text,
		})
	}

	// Build per-node statuses from store aggregations.
	var statuses []llm.NodeStatus
	for _, nb := range st.Terms(store.MatchAll{}, "hostname", 0) {
		ns := llm.NodeStatus{Node: nb.Value, Counts: map[taxonomy.Category]int{}}
		for _, cb := range st.Terms(store.Term{Field: "hostname", Value: nb.Value}, "category", 0) {
			ns.Counts[taxonomy.Category(cb.Value)] = cb.Count
		}
		statuses = append(statuses, ns)
	}

	s := llm.NewSummarizer(llm.Falcon40B(), llm.A100Node(), 1)

	fmt.Println("== Cluster status summary ==")
	text, lat := s.SummarizeSystem(statuses)
	fmt.Println(text)
	fmt.Printf("(modelled generation cost: %v — fine for a few times per day)\n", lat.Round(time.Millisecond))

	fmt.Printf("\n== Node summary for %s ==\n", bad.Name)
	for _, ns := range statuses {
		if ns.Node == bad.Name {
			text, lat = s.SummarizeNode(ns)
			fmt.Println(text)
			fmt.Printf("(modelled cost: %v)\n", lat.Round(time.Millisecond))
		}
	}

	fmt.Println("\n== Drafted reply to an admin email ==")
	question := fmt.Sprintf("Hi team, a user reports jobs dying on %s — anything in the logs?", bad.Name)
	fmt.Printf("> %s\n\n", question)
	reply, lat := s.DraftReply(question, statuses)
	fmt.Println(reply)
	fmt.Printf("\n(modelled cost: %v)\n", lat.Round(time.Millisecond))
}
