package hetsyslog_test

// One benchmark per table/figure of the paper's evaluation (DESIGN.md §4).
// Benchmarks print the reproduced artifact once (b.N repetitions measure
// the regeneration cost); run them with:
//
//	go test -bench=. -benchmem
//
// Scale is laptop-sized by default; set HETSYSLOG_SCALE to grow the corpus
// (196393 = the paper's full Table 2).

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hetsyslog/internal/collector"
	"hetsyslog/internal/core"
	"hetsyslog/internal/experiments"
	"hetsyslog/internal/llm"
	"hetsyslog/internal/loggen"
	"hetsyslog/internal/obs"
	"hetsyslog/internal/resilience"
	"hetsyslog/internal/store"
	"hetsyslog/internal/syslog"
	"hetsyslog/internal/tfidf"
)

func benchScale() int {
	if s := os.Getenv("HETSYSLOG_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 8000
}

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// sharedRunner caches the corpus across benchmarks.
func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner = experiments.NewRunner(experiments.Config{Scale: benchScale(), Seed: 1})
	})
	if _, err := runner.Corpus(); err != nil {
		b.Fatal(err)
	}
	return runner
}

func printOnce(b *testing.B, i int, txt string) {
	if i == 0 && testing.Verbose() {
		b.Log("\n" + txt)
	}
}

// BenchmarkTable1TFIDF regenerates the per-category top-token table.
func BenchmarkTable1TFIDF(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Table1(5)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkTable2Generate regenerates the Table 2 corpus (workload
// generation cost).
func BenchmarkTable2Generate(b *testing.B) {
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := loggen.NewGenerator(int64(i + 1))
		examples, err := g.Dataset(loggen.ScaledPaperCounts(scale))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("generated %d unique messages", len(examples))
		}
	}
}

// BenchmarkFigure3Classifiers runs the full eight-model sweep: weighted
// F1, training time and testing time per classifier.
func BenchmarkFigure3Classifiers(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkFigure2ConfusionMatrix trains Linear SVC and regenerates its
// confusion matrix.
func BenchmarkFigure2ConfusionMatrix(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkAblationNoUnimportant reruns the sweep without the
// "Unimportant" category (§5.1).
func BenchmarkAblationNoUnimportant(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkTable3LLM regenerates the LLM inference-cost table from the
// simulators' token accounting and the A100 latency model.
func BenchmarkTable3LLM(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Table3(50)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkFigure1Explanation regenerates the worked example with its
// natural-language explanation.
func BenchmarkFigure1Explanation(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txt, err := r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkFailureModes quantifies the §5.2 alignment failures with and
// without the token cap.
func BenchmarkFailureModes(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Failures(100)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkRealtimeClassification measures the deployed system's
// per-message classification latency — the number that must beat the
// cluster's >1M msgs/hour ingest rate (§5: "techniques ... are useless to
// us if ... we can only afford to classify a single message every 30
// seconds").
func BenchmarkRealtimeClassification(b *testing.B) {
	r := sharedRunner(b)
	corpus, err := r.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	model, _ := core.NewModel("Complement Naive Bayes")
	tc, err := core.Train(model, corpus, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	msg := "CPU 12 Temperature Above Non-Recoverable - Asserted. Current temperature: 96C"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Classify(msg)
	}
}

// serviceStream pre-generates a record stream and a trained service so
// the throughput benchmarks measure classification, not setup.
func serviceStream(b *testing.B, n int) (*core.TextClassifier, []collector.Record) {
	b.Helper()
	r := sharedRunner(b)
	corpus, err := r.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	model, _ := core.NewModel("Complement Naive Bayes")
	tc, err := core.Train(model, corpus, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	g := loggen.NewGenerator(17)
	recs := make([]collector.Record, n)
	for i := range recs {
		ex := g.Example()
		recs[i] = collector.Record{Tag: "syslog", Time: ex.Time, Msg: ex.Message()}
	}
	return tc, recs
}

// zipfStream pre-generates a Zipf-repetitive record stream: n records
// drawn from `distinct` base messages with the heavy-headed repetition of
// real syslog traffic (§4.4.1). This is the workload the classify cache
// is built for.
func zipfStream(b *testing.B, n, distinct int) []collector.Record {
	b.Helper()
	g := loggen.NewGenerator(29)
	exs := g.ZipfExamples(n, distinct, 1.2)
	recs := make([]collector.Record, n)
	for i, ex := range exs {
		recs[i] = collector.Record{Tag: "syslog", Time: ex.Time, Msg: ex.Message()}
	}
	return recs
}

// BenchmarkServiceThroughput measures the classification hot path —
// core.Service.Write over a pre-generated batch — across worker-pool
// widths and two workloads: "uniform" (every message distinct, the
// worst case for the cache and the historical baseline) and "zipf"
// (realistic heavy repetition), the latter with the classify cache off
// and on. The recs/s metric is the number that must keep up with the
// cluster's >1M msgs/hour ingest rate; the zipf cache=on/off pair is the
// cache's headline speedup.
func BenchmarkServiceThroughput(b *testing.B) {
	const batch = 2048
	tc, uniform := serviceStream(b, batch)
	zipf := zipfStream(b, batch, 256)
	for _, w := range []struct {
		name string
		recs []collector.Record
	}{{"uniform", uniform}, {"zipf", zipf}} {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, cached := range []bool{false, true} {
				if cached && w.name == "uniform" {
					continue // the cache targets repetition; skip the no-op combo
				}
				name := fmt.Sprintf("%s/workers=%d/cache=%v", w.name, workers, cached)
				b.Run(name, func(b *testing.B) {
					svc := &core.Service{Classifier: tc, Workers: workers}
					if cached {
						svc.Cache = core.NewClassifyCache(0, 0)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := svc.Write(context.Background(), w.recs); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "recs/s")
				})
			}
		}
	}
}

// BenchmarkServiceCacheHit measures a raw-level cache hit — the
// steady-state cost of classifying a repeated message. Run with -benchmem:
// the contract is 0 allocs/op (enforced by TestCachedClassifyZeroAllocs).
func BenchmarkServiceCacheHit(b *testing.B) {
	tc, _ := serviceStream(b, 1)
	cache := core.NewClassifyCache(0, 0)
	var sc core.ClassifyScratch
	msg := "CPU 12 Temperature Above Non-Recoverable - Asserted. Current temperature: 96C"
	if _, outcome := tc.PredictCached(msg, cache, &sc); outcome != core.CacheMiss {
		b.Fatal("first call should miss")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, outcome := tc.PredictCached(msg, cache, &sc); outcome != core.CacheHitRaw {
			b.Fatal("warm call should hit the raw level")
		}
	}
}

// BenchmarkVectorizeAllocs contrasts the allocating Transform against the
// scratch-reusing TransformInto on the cache-miss path. Run with
// -benchmem; the Into variant should be allocation-free in steady state.
func BenchmarkVectorizeAllocs(b *testing.B) {
	tc, _ := serviceStream(b, 1)
	msg := "error: Node cn101 has low real_memory size (190000 < 256000)"
	tokens := tc.Prep.Process(msg)
	b.Run("Transform", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tc.Vectorizer.Transform(tokens)
		}
	})
	b.Run("TransformInto", func(b *testing.B) {
		var sc tfidf.TransformScratch
		tc.Vectorizer.TransformInto(tokens, &sc) // warm the scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tc.Vectorizer.TransformInto(tokens, &sc)
		}
	})
}

// BenchmarkServiceThroughputWithStore is the same sweep with store
// indexing in the loop, showing how much of the parallel speedup
// survives contention on the sharded index locks.
func BenchmarkServiceThroughputWithStore(b *testing.B) {
	const batch = 2048
	tc, recs := serviceStream(b, batch)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			st := store.New(8)
			svc := &core.Service{Classifier: tc, Store: st, Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Write(context.Background(), recs); err != nil {
					b.Fatal(err)
				}
				// Keep the store bounded off the clock, as retention would:
				// otherwise long -benchtime runs measure GC over an
				// ever-growing heap instead of the indexing path.
				if st.Count() >= 16*batch {
					b.StopTimer()
					st.DeleteBefore(time.Unix(1<<40, 0))
					st.Compact()
					b.StartTimer()
				}
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "recs/s")
		})
	}
}

// BenchmarkPipelineFlushWorkers pushes a fixed stream through the full
// collector pipeline into the classifying service, comparing one flusher
// against a sharded flusher pool (batches in flight concurrently).
func BenchmarkPipelineFlushWorkers(b *testing.B) {
	const n = 4096
	tc, recs := serviceStream(b, n)
	for _, flushers := range []int{1, 4} {
		b.Run(fmt.Sprintf("flushers=%d", flushers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc := &core.Service{Classifier: tc, Workers: 2}
				ch := make(chan collector.Record, 256)
				p := &collector.Pipeline{
					Source:       &collector.ChannelSource{Ch: ch},
					Sink:         svc,
					BatchSize:    128,
					FlushWorkers: flushers,
				}
				done := make(chan error, 1)
				go func() { done <- p.Run(context.Background()) }()
				for _, r := range recs {
					ch <- r
				}
				close(ch)
				if err := <-done; err != nil {
					b.Fatal(err)
				}
				if got, _ := svc.Counts(); got != n {
					b.Fatalf("classified = %d, want %d", got, n)
				}
			}
			b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "recs/s")
		})
	}
}

// signalSink wraps the real sink with a completion notification so the
// end-to-end bench can wait for an exact flushed-record count instead of
// polling Counts() in a sleep loop (the sleeps dominated the old
// measurement and hid the actual pipeline latency).
type signalSink struct {
	inner collector.Sink
	mu    sync.Mutex
	total int64
	want  int64
	ch    chan struct{}
}

func (s *signalSink) Write(ctx context.Context, batch []collector.Record) error {
	if err := s.inner.Write(ctx, batch); err != nil {
		return err
	}
	s.mu.Lock()
	s.total += int64(len(batch))
	if s.ch != nil && s.total >= s.want {
		close(s.ch)
		s.ch = nil
	}
	s.mu.Unlock()
	return nil
}

// expect returns a channel closed once the cumulative flushed-record
// count reaches target. One waiter at a time (the bench loop).
func (s *signalSink) expect(target int64) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan struct{})
	if s.total >= target {
		close(ch)
		return ch
	}
	s.want, s.ch = target, ch
	return ch
}

// reportStages prints the per-stage latency attribution the obs registry
// collected during the run — the profile that pins the socket→store gap
// to a stage instead of guessing. Shown with -v.
func reportStages(b *testing.B, reg *obs.Registry, records int64, wall time.Duration) {
	if !testing.Verbose() {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-stage attribution over %d records (wall %v):\n", records, wall.Round(time.Millisecond))
	for _, st := range []struct{ label, metric string }{
		{"ingest (read-loop batch)", "syslog_ingest_batch_seconds"},
		{"flush (pipeline→sink)", "pipeline_flush_seconds"},
		{"classify (per record)", "service_classify_seconds"},
		{"index (store batch)", "store_index_batch_seconds"},
	} {
		h := reg.Histogram(st.metric, "", obs.LatencyBuckets)
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-26s %9d obs  mean=%-12v p99=%-12v busy=%5.1f%%\n",
			st.label, h.Count(),
			time.Duration(h.Mean()*float64(time.Second)).Round(time.Nanosecond),
			time.Duration(h.Quantile(0.99)*float64(time.Second)).Round(time.Nanosecond),
			100*h.Sum()/wall.Seconds())
	}
	b.Log("\n" + sb.String())
}

// BenchmarkIngestEndToEnd measures the whole ingest fast path at once:
// loopback TCP socket -> octet-counted framing -> byte parsers -> pooled
// messages -> batched pipeline handoff -> classification -> batched store
// indexing. The recs/s metric is the end-to-end number to compare against
// the cluster's >1M msgs/hour rate; BenchmarkIngestParse and
// BenchmarkServerIngestTCP in internal/syslog isolate the stages, and -v
// prints the per-stage latency attribution from the obs registry.
//
// Two workloads: "uniform/cache=off" (every message distinct — the
// classify cache's worst case and the historical baseline) and
// "zipf/cache=on" (heavy-headed repetition with the cache enabled — the
// deployed cmd/collector default against realistic syslog traffic).
func BenchmarkIngestEndToEnd(b *testing.B) {
	const n = 4096
	tc, uniform := serviceStream(b, n)
	zipf := zipfStream(b, n, 256)
	for _, w := range []struct {
		name   string
		recs   []collector.Record
		cached bool
	}{
		{"uniform/cache=off", uniform, false},
		{"zipf/cache=on", zipf, true},
	} {
		b.Run(w.name, func(b *testing.B) {
			var wireBuf strings.Builder
			for _, r := range w.recs {
				wire := syslog.FormatRFC5424(r.Msg)
				fmt.Fprintf(&wireBuf, "%d %s", len(wire), wire)
			}
			payload := []byte(wireBuf.String())

			// Everything below runs once: service, listener, store and the
			// TCP connection live across iterations, so the timed region
			// measures the pipeline, not its construction and teardown.
			reg := obs.NewRegistry()
			st := store.New(8)
			st.Instrument(reg)
			svc := &core.Service{Classifier: tc, Store: st, Metrics: reg}
			if w.cached {
				svc.Cache = core.NewClassifyCache(0, 0)
			}
			sink := &signalSink{inner: svc}
			src := collector.NewSyslogSource("", "127.0.0.1:0")
			src.Metrics = reg
			p := &collector.Pipeline{
				Source: src, Sink: sink,
				BatchSize: 128, FlushInterval: time.Millisecond,
				Metrics: reg,
				// The deployed wiring: the store copies into arenas and every
				// other retention point clones, so leased listener buffers go
				// straight back to the parse pool after each flush.
				Release: func(r collector.Record) { syslog.Recycle(r.Msg) },
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- p.Run(ctx) }()
			<-src.Ready()
			conn, err := net.Dial("tcp", src.BoundTCP)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()

			var msBefore runtime.MemStats
			runtime.ReadMemStats(&msBefore)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arrived := sink.expect(int64(i+1) * n)
				if _, err := conn.Write(payload); err != nil {
					b.Fatal(err)
				}
				<-arrived
				// Bound the live store between iterations, off the clock: a
				// deployed store runs under retention, and without a bound
				// b.N iterations grow the heap until the bench measures GC
				// mark time instead of the ingest path.
				if st.Count() >= 16*n {
					b.StopTimer()
					st.DeleteBefore(time.Unix(1<<40, 0))
					st.Compact()
					b.StartTimer()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "recs/s")
			// GC relief trajectory: stop-the-world pause attributable to
			// each ingested record, and the live heap the retained corpus
			// costs at the end of the run (process-wide, informational).
			var msAfter runtime.MemStats
			runtime.ReadMemStats(&msAfter)
			b.ReportMetric(float64(msAfter.PauseTotalNs-msBefore.PauseTotalNs)/(float64(b.N)*n), "gc-pause-ns/rec")
			b.ReportMetric(float64(msAfter.HeapAlloc)/(1<<20), "heap-MB")

			cancel()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			total := int64(b.N) * n
			if s := p.Stats(); s.Ingested != total || s.Flushed != total {
				b.Fatalf("lossy ingest: %+v, want %d", s, total)
			}
			reportStages(b, reg, total, b.Elapsed())
		})
	}
}

// BenchmarkPipelineFlushUnderFaults measures end-to-end pipeline
// throughput with the full resilience stack engaged against a misbehaving
// sink: a seeded ChaosSink injects write errors and partial deliveries in
// front of the classifying service while the circuit breaker and the disk
// spill queue keep delivery lossless (Dropped must stay 0). Compare
// recs/s against BenchmarkPipelineFlushWorkers for the cost of surviving
// faults.
func BenchmarkPipelineFlushUnderFaults(b *testing.B) {
	const n = 4096
	tc, recs := serviceStream(b, n)
	spoolRoot := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := &core.Service{Classifier: tc, Workers: 2}
		chaos := resilience.NewChaosSink(svc.Write, resilience.ChaosPlan{
			Seed: int64(i + 1), ErrorRate: 0.05, PartialRate: 0.25,
		})
		ch := make(chan collector.Record, 256)
		p := &collector.Pipeline{
			Source: &collector.ChannelSource{Ch: ch},
			Sink:   chaos,
			Config: &collector.Config{
				BatchSize:        128,
				FlushWorkers:     2,
				MaxRetries:       2,
				RetryBackoff:     500 * time.Microsecond,
				MaxRetryBackoff:  5 * time.Millisecond,
				BreakerThreshold: 4,
				ReplayInterval:   time.Millisecond,
				SpoolDir:         filepath.Join(spoolRoot, strconv.Itoa(i)),
			},
		}
		done := make(chan error, 1)
		go func() { done <- p.Run(context.Background()) }()
		for _, r := range recs {
			ch <- r
		}
		close(ch)
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		if s := p.Stats(); s.Dropped != 0 {
			b.Fatalf("faults must spool, not drop: %+v", s)
		}
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkSimulatedLLMThroughput is the Table 3 counterpoint to
// BenchmarkRealtimeClassification: simulated wall-clock per generative
// classification (the simulator itself is fast; the *reported* latency is
// in Table 3).
func BenchmarkSimulatedLLMThroughput(b *testing.B) {
	g := llm.NewGenerative(llm.Falcon40B(), llm.A100Node(), llm.Falcon40BFailures(), 1)
	g.MaxNewTokens = 64
	p := llm.DefaultPrompt()
	msg := "CPU 12 Temperature Above Non-Recoverable - Asserted. Current temperature: 96C"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Classify(msg, p)
	}
}

// BenchmarkDriftRobustness runs the drift experiment: classifier F1 vs
// bucketing coverage before/after a fleet-wide firmware update (§3
// motivation, §7 future work).
func BenchmarkDriftRobustness(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Drift("Complement Naive Bayes")
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkBaselines compares the pre-paper approaches (Levenshtein
// bucketing, Cavnar-Trenkle n-grams) against the TF-IDF pipeline.
func BenchmarkBaselines(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Baselines()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkLemmaAblation quantifies the §4.3.2 lemmatization step
// (DESIGN.md ablation: lemmatization on/off for TF-IDF feature quality).
func BenchmarkLemmaAblation(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.LemmaAblation()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkServiceObsOverhead measures the cost of live observability on
// the classify hot path: the same Service.Write workload with no metrics
// registry (counters only, no timing) versus a live obs.Registry (same
// counters plus the per-record classify-latency histogram, i.e. two
// time.Now calls and one histogram observation per record). The
// acceptance bar for the observability layer is <5% overhead; compare the
// two recs/s numbers.
func BenchmarkServiceObsOverhead(b *testing.B) {
	const batch = 2048
	tc, recs := serviceStream(b, batch)
	for _, cfg := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"nil-registry", nil},
		{"live-registry", obs.NewRegistry()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			svc := &core.Service{Classifier: tc, Workers: 1, Metrics: cfg.reg}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Write(context.Background(), recs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "recs/s")
		})
	}
}
