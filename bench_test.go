package hetsyslog_test

// One benchmark per table/figure of the paper's evaluation (DESIGN.md §4).
// Benchmarks print the reproduced artifact once (b.N repetitions measure
// the regeneration cost); run them with:
//
//	go test -bench=. -benchmem
//
// Scale is laptop-sized by default; set HETSYSLOG_SCALE to grow the corpus
// (196393 = the paper's full Table 2).

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"hetsyslog/internal/core"
	"hetsyslog/internal/experiments"
	"hetsyslog/internal/llm"
	"hetsyslog/internal/loggen"
)

func benchScale() int {
	if s := os.Getenv("HETSYSLOG_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 8000
}

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// sharedRunner caches the corpus across benchmarks.
func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner = experiments.NewRunner(experiments.Config{Scale: benchScale(), Seed: 1})
	})
	if _, err := runner.Corpus(); err != nil {
		b.Fatal(err)
	}
	return runner
}

func printOnce(b *testing.B, i int, txt string) {
	if i == 0 && testing.Verbose() {
		b.Log("\n" + txt)
	}
}

// BenchmarkTable1TFIDF regenerates the per-category top-token table.
func BenchmarkTable1TFIDF(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Table1(5)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkTable2Generate regenerates the Table 2 corpus (workload
// generation cost).
func BenchmarkTable2Generate(b *testing.B) {
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := loggen.NewGenerator(int64(i + 1))
		examples, err := g.Dataset(loggen.ScaledPaperCounts(scale))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("generated %d unique messages", len(examples))
		}
	}
}

// BenchmarkFigure3Classifiers runs the full eight-model sweep: weighted
// F1, training time and testing time per classifier.
func BenchmarkFigure3Classifiers(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkFigure2ConfusionMatrix trains Linear SVC and regenerates its
// confusion matrix.
func BenchmarkFigure2ConfusionMatrix(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkAblationNoUnimportant reruns the sweep without the
// "Unimportant" category (§5.1).
func BenchmarkAblationNoUnimportant(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkTable3LLM regenerates the LLM inference-cost table from the
// simulators' token accounting and the A100 latency model.
func BenchmarkTable3LLM(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Table3(50)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkFigure1Explanation regenerates the worked example with its
// natural-language explanation.
func BenchmarkFigure1Explanation(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txt, err := r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkFailureModes quantifies the §5.2 alignment failures with and
// without the token cap.
func BenchmarkFailureModes(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Failures(100)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkRealtimeClassification measures the deployed system's
// per-message classification latency — the number that must beat the
// cluster's >1M msgs/hour ingest rate (§5: "techniques ... are useless to
// us if ... we can only afford to classify a single message every 30
// seconds").
func BenchmarkRealtimeClassification(b *testing.B) {
	r := sharedRunner(b)
	corpus, err := r.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	model, _ := core.NewModel("Complement Naive Bayes")
	tc, err := core.Train(model, corpus, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	msg := "CPU 12 Temperature Above Non-Recoverable - Asserted. Current temperature: 96C"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Classify(msg)
	}
}

// BenchmarkSimulatedLLMThroughput is the Table 3 counterpoint to
// BenchmarkRealtimeClassification: simulated wall-clock per generative
// classification (the simulator itself is fast; the *reported* latency is
// in Table 3).
func BenchmarkSimulatedLLMThroughput(b *testing.B) {
	g := llm.NewGenerative(llm.Falcon40B(), llm.A100Node(), llm.Falcon40BFailures(), 1)
	g.MaxNewTokens = 64
	p := llm.DefaultPrompt()
	msg := "CPU 12 Temperature Above Non-Recoverable - Asserted. Current temperature: 96C"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Classify(msg, p)
	}
}

// BenchmarkDriftRobustness runs the drift experiment: classifier F1 vs
// bucketing coverage before/after a fleet-wide firmware update (§3
// motivation, §7 future work).
func BenchmarkDriftRobustness(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Drift("Complement Naive Bayes")
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkBaselines compares the pre-paper approaches (Levenshtein
// bucketing, Cavnar-Trenkle n-grams) against the TF-IDF pipeline.
func BenchmarkBaselines(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.Baselines()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}

// BenchmarkLemmaAblation quantifies the §4.3.2 lemmatization step
// (DESIGN.md ablation: lemmatization on/off for TF-IDF feature quality).
func BenchmarkLemmaAblation(b *testing.B) {
	r := sharedRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, txt, err := r.LemmaAblation()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, txt)
	}
}
